package chem

import (
	"math"
	"sort"
	"testing"

	"transched/internal/cluster"
	"transched/internal/flowshop"
	"transched/internal/trace"
)

func TestTile(t *testing.T) {
	tile := Tile{Dims: []int{100, 100}}
	if tile.Elems() != 10000 {
		t.Errorf("Elems = %d", tile.Elems())
	}
	if tile.Bytes() != 80000 {
		t.Errorf("Bytes = %g", tile.Bytes())
	}
	if f := ContractionFlops(10, 20, 30); f != 12000 {
		t.Errorf("ContractionFlops = %g", f)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := cluster.Cascade()
	cfg := Config{Seed: 7, Processes: 3}
	a, err := GenerateHF(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateHF(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p := range a {
		if len(a[p].Tasks) != len(b[p].Tasks) {
			t.Fatalf("process %d: task counts differ", p)
		}
		for i := range a[p].Tasks {
			if a[p].Tasks[i] != b[p].Tasks[i] {
				t.Fatalf("process %d task %d differs: %v vs %v", p, i, a[p].Tasks[i], b[p].Tasks[i])
			}
		}
	}
}

func TestGenerateProcessCountAndSize(t *testing.T) {
	m := cluster.Cascade()
	traces, err := GenerateCCSD(m, Config{Seed: 1, Processes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 5 {
		t.Fatalf("got %d traces, want 5", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Tasks) < 300 || len(tr.Tasks) > 800 {
			t.Errorf("process %d has %d tasks, want 300-800 (paper §5)", tr.Process, len(tr.Tasks))
		}
		for _, task := range tr.Tasks {
			if err := task.Validate(); err != nil {
				t.Fatal(err)
			}
			if task.Comm <= 0 || task.Mem <= 0 {
				t.Fatalf("task %v has non-positive transfer", task)
			}
		}
	}
	// Default process count follows the machine (150 on Cascade).
	full, err := GenerateHF(m, Config{Seed: 1, MinTasks: 10, MaxTasks: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != m.Processes() {
		t.Fatalf("default process count = %d, want %d", len(full), m.Processes())
	}
}

// TestHFCharacteristics checks the paper's Fig 8 shape for HF:
// communication-dominated (sum comp ≈ 0.4x sum comm), near-full overlap
// available (OMIM ≈ sum comm), and mc = 176 KB.
func TestHFCharacteristics(t *testing.T) {
	m := cluster.Cascade()
	traces, err := GenerateHF(m, Config{Seed: 11, Processes: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		in := tr.Instance(math.Inf(1))
		omim := flowshop.OMIM(in.Tasks)
		commRatio := in.SumComm() / omim
		compRatio := in.SumComp() / omim
		if commRatio < 0.95 || commRatio > 1.05 {
			t.Errorf("process %d: sum comm / OMIM = %g, want ~1", tr.Process, commRatio)
		}
		if compRatio < 0.25 || compRatio > 0.55 {
			t.Errorf("process %d: sum comp / OMIM = %g, want ~0.4", tr.Process, compRatio)
		}
		if mc := tr.MinCapacity(); mc < 0.90*176*1024 || mc > 1.005*176*1024 {
			t.Errorf("process %d: mc = %g bytes, want ~176KB", tr.Process, mc)
		}
	}
}

// TestCCSDCharacteristics checks the Fig 8 shape for CCSD: communication
// and computation roughly balanced, heterogeneous tasks, mc in the GB
// range.
func TestCCSDCharacteristics(t *testing.T) {
	m := cluster.Cascade()
	traces, err := GenerateCCSD(m, Config{Seed: 13, Processes: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		in := tr.Instance(math.Inf(1))
		omim := flowshop.OMIM(in.Tasks)
		commRatio := in.SumComm() / omim
		compRatio := in.SumComp() / omim
		if commRatio < 0.6 || compRatio < 0.6 {
			t.Errorf("process %d: comm %g comp %g of OMIM, want balanced (both > 0.6)",
				tr.Process, commRatio, compRatio)
		}
		if mc := tr.MinCapacity(); mc < 5e8 || mc > 4e9 {
			t.Errorf("process %d: mc = %g bytes, want GB-range (paper: 1.8GB)", tr.Process, mc)
		}
		// Heterogeneity: the coefficient of variation of transfer times
		// should be large (CCSD tiles are chosen per program point).
		mean, sq := 0.0, 0.0
		for _, task := range tr.Tasks {
			mean += task.Comm
		}
		mean /= float64(len(tr.Tasks))
		for _, task := range tr.Tasks {
			sq += (task.Comm - mean) * (task.Comm - mean)
		}
		cv := math.Sqrt(sq/float64(len(tr.Tasks))) / mean
		if cv < 0.8 {
			t.Errorf("process %d: transfer-time CV = %g, want heterogeneous (> 0.8)", tr.Process, cv)
		}
	}
}

// TestHFMoreHomogeneousThanCCSD: HF's fixed tile size makes its tasks far
// less heterogeneous than CCSD's automatically chosen tiles (paper §5: "HF
// operates on almost homogeneous tiles while CCSD uses more heterogeneous
// tiles"). Compare the coefficient of variation of transfer times.
func TestHFMoreHomogeneousThanCCSD(t *testing.T) {
	m := cluster.Cascade()
	cv := func(tasks []float64) float64 {
		mean, sq := 0.0, 0.0
		for _, v := range tasks {
			mean += v
		}
		mean /= float64(len(tasks))
		for _, v := range tasks {
			sq += (v - mean) * (v - mean)
		}
		return math.Sqrt(sq/float64(len(tasks))) / mean
	}
	comms := func(traces []*trace.Trace) []float64 {
		var out []float64
		for _, tr := range traces {
			for _, task := range tr.Tasks {
				out = append(out, task.Comm)
			}
		}
		return out
	}
	hf, err := GenerateHF(m, Config{Seed: 17, Processes: 2})
	if err != nil {
		t.Fatal(err)
	}
	ccsd, err := GenerateCCSD(m, Config{Seed: 17, Processes: 2})
	if err != nil {
		t.Fatal(err)
	}
	hfCV, ccsdCV := cv(comms(hf)), cv(comms(ccsd))
	if hfCV >= ccsdCV {
		t.Errorf("HF transfer CV %g not below CCSD CV %g", hfCV, ccsdCV)
	}
}

// TestHFComputeIntensiveHaveSmallComm checks the §4.6 observation that
// explains SCMR's strength on HF: compute-intensive tasks have small
// transfers.
func TestHFComputeIntensiveHaveSmallComm(t *testing.T) {
	m := cluster.Cascade()
	traces, err := GenerateHF(m, Config{Seed: 19, Processes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		var ci, other []float64
		for _, task := range tr.Tasks {
			if task.ComputeIntensive() {
				ci = append(ci, task.Comm)
			} else {
				other = append(other, task.Comm)
			}
		}
		if len(ci) == 0 || len(other) == 0 {
			t.Fatal("missing a task class")
		}
		if m1, m2 := median(ci), median(other); m1 > 0.5*m2 {
			t.Errorf("compute-intensive median comm %g not well below others' %g", m1, m2)
		}
	}
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func TestGenerateDispatch(t *testing.T) {
	m := cluster.Cascade()
	if _, err := Generate("HF", m, Config{Seed: 1, Processes: 1, MinTasks: 5, MaxTasks: 5}); err != nil {
		t.Error(err)
	}
	if _, err := Generate("ccsd", m, Config{Seed: 1, Processes: 1, MinTasks: 5, MaxTasks: 5}); err != nil {
		t.Error(err)
	}
	if _, err := Generate("DFT", m, Config{}); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestGenerateRejectsBadMachine(t *testing.T) {
	if _, err := GenerateHF(cluster.Machine{}, Config{}); err == nil {
		t.Error("invalid machine should be rejected")
	}
}

func TestTracesRoundTripThroughFormat(t *testing.T) {
	m := cluster.Cascade()
	traces, err := GenerateCCSD(m, Config{Seed: 23, Processes: 1, MinTasks: 20, MaxTasks: 20})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := trace.WriteSet(dir, traces); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || len(back[0].Tasks) != 20 {
		t.Fatalf("round trip lost tasks")
	}
	for i := range back[0].Tasks {
		if back[0].Tasks[i] != traces[0].Tasks[i] {
			t.Fatalf("task %d: %v != %v", i, back[0].Tasks[i], traces[0].Tasks[i])
		}
	}
}
