package chem

import (
	"math"
	"testing"

	"transched/internal/cluster"
	"transched/internal/model"
)

// TestAnnotateDoesNotPerturbGeneration: annotation derives features from
// values the generator already drew, so it must not consume randomness —
// the task streams with and without it are identical, which is what
// keeps the golden digests in golden_test.go valid for annotated runs.
func TestAnnotateDoesNotPerturbGeneration(t *testing.T) {
	m := cluster.Cascade()
	base := Config{Seed: 20190415, Processes: 2, MinTasks: 25, MaxTasks: 40}
	ann := base
	ann.Annotate = true
	for _, app := range []string{"HF", "CCSD"} {
		plain, err := Generate(app, m, base)
		if err != nil {
			t.Fatal(err)
		}
		annotated, err := Generate(app, m, ann)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := digestTraces(annotated), digestTraces(plain); got != want {
			t.Errorf("%s: Annotate changed the task stream: %s != %s", app, got, want)
		}
		for _, tr := range plain {
			if tr.FeatureNames != nil || tr.Features != nil {
				t.Fatalf("%s: unannotated run carries annotations", app)
			}
		}
		for _, tr := range annotated {
			if len(tr.FeatureNames) != len(model.Names) {
				t.Fatalf("%s: FeatureNames = %v", app, tr.FeatureNames)
			}
			if len(tr.Features) != len(tr.Tasks) {
				t.Fatalf("%s: %d rows for %d tasks", app, len(tr.Features), len(tr.Tasks))
			}
			for i := range tr.Tasks {
				if tr.Features[i] == nil {
					t.Fatalf("%s: task %d missing feature row", app, i)
				}
			}
		}
	}
}

// TestAnnotationsReproduceDurations: the recorded features are the cost
// model's inputs, so pushing them back through the machine model must
// reproduce each task's durations exactly. This is the ground-truth
// property that makes the features a sound training set.
func TestAnnotationsReproduceDurations(t *testing.T) {
	m := cluster.Cascade()
	cfg := Config{Seed: 7, Processes: 1, MinTasks: 30, MaxTasks: 30, Annotate: true}
	for _, app := range []string{"HF", "CCSD"} {
		traces, err := Generate(app, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range traces {
			for i, task := range tr.Tasks {
				vec, ok := model.FromRow(tr.FeatureNames, tr.Features[i])
				if !ok {
					t.Fatalf("%s: row %d not mappable", app, i)
				}
				f := model.Features{Bytes: vec[0], Mem: vec[1], Flops: vec[2], MemTraffic: vec[3]}
				if got := m.TransferTime(f.Bytes); !approxEq(got, task.Comm) {
					t.Errorf("%s %s: TransferTime(features) = %g, Comm = %g", app, task.Name, got, task.Comm)
				}
				if got := m.ComputeTime(f.Flops, f.MemTraffic); !approxEq(got, task.Comp) {
					t.Errorf("%s %s: ComputeTime(features) = %g, Comp = %g", app, task.Name, got, task.Comp)
				}
				if f.Mem != task.Mem {
					t.Errorf("%s %s: Mem feature %g != task Mem %g", app, task.Name, f.Mem, task.Mem)
				}
			}
		}
	}
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*(1+math.Abs(b))
}

// TestRidgeGoldenCoefficientDigest pins the fitted ridge models
// bit-for-bit: the closed-form fit on the seeded HF workload must
// produce these exact coefficient digests on every run, worker count
// and -shuffle order. A change means the estimator arithmetic changed
// and every robustness figure shifts with it — update deliberately.
func TestRidgeGoldenCoefficientDigest(t *testing.T) {
	m := cluster.Cascade()
	cfg := Config{Seed: 20190415, Processes: 2, MinTasks: 25, MaxTasks: 40, Annotate: true}
	traces, err := GenerateHF(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dm, rep, err := model.FitDurationModel(traces, model.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const wantCM = "d31e351f055cacf7"
	const wantCP = "a263ca2592c07e74"
	if got := dm.CM.Digest(); got != wantCM {
		t.Errorf("CM digest = %s, want %s", got, wantCM)
	}
	if got := dm.CP.Digest(); got != wantCP {
		t.Errorf("CP digest = %s, want %s", got, wantCP)
	}
	if rep.DigestCM != dm.CM.Digest() || rep.DigestCP != dm.CP.Digest() {
		t.Error("FitReport digests disagree with the models")
	}
	// The in-distribution fit is near-exact (the features are the cost
	// model's inputs), so the calibrated sigma sits on the MinSigma
	// floor — the documented reason the floor exists.
	if rep.Sigma != model.MinSigma {
		t.Errorf("Sigma = %g, want the MinSigma floor %g (raw %g)", rep.Sigma, model.MinSigma, rep.SigmaRaw)
	}
	if rep.CVCM.R2 < 0.999 || rep.CVCP.R2 < 0.999 {
		t.Errorf("CV R2 = %g/%g, want near-exact on in-distribution data", rep.CVCM.R2, rep.CVCP.R2)
	}
}
