// Package chem synthesises per-process task traces with the statistical
// shape of the two NWChem molecular-chemistry kernels the paper evaluates
// on (§5): double-precision Hartree–Fock on SiOSi molecules and CCSD on
// Uracil. The real traces came from instrumented runs on PNNL's Cascade
// machine; since those are not available, this package models the two
// workloads from first principles — tile shapes, transfer volumes and
// kernel flop counts — and derives task durations through the
// cluster.Machine cost model.
//
// What the substitution preserves (see DESIGN.md §3): the heuristics only
// ever observe (CM_i, CP_i, Mem_i) tuples, so reproducing the paper's
// workload characteristics reproduces the scheduling problem:
//
//   - HF uses a fixed tile size (100), so tasks are near-homogeneous; the
//     workload is communication-dominated (Fig 8: the total computation is
//     ~0.4x the total communication, so only a small overlap is possible),
//     and its compute-intensive tasks have small transfers (§4.6).
//   - CCSD lets the tensor contraction engine pick tile sizes per block,
//     so tasks are heterogeneous, and total communication and computation
//     are roughly balanced (Fig 8), leaving much more overlap to win.
//
// Both applications issue two kinds of computations, tensor transposes
// (memory-bound) and tensor contractions (compute-bound), as §5 notes.
package chem

import (
	"fmt"
	"math/rand"

	"transched/internal/cluster"
	"transched/internal/core"
	"transched/internal/model"
	"transched/internal/trace"
)

// bytesPerWord is the size of a double-precision tensor element.
const bytesPerWord = 8

// Tile is a rectangular block of a dense tensor.
type Tile struct {
	Dims []int
}

// Elems returns the number of elements in the tile.
func (t Tile) Elems() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Bytes returns the tile's size in bytes (double precision).
func (t Tile) Bytes() float64 { return float64(t.Elems() * bytesPerWord) }

// ContractionFlops returns the flop count of contracting two tiles over
// the given index extents: 2 * |out-left| * |contracted| * |out-right|.
func ContractionFlops(outLeft, contracted, outRight int) float64 {
	return 2 * float64(outLeft) * float64(contracted) * float64(outRight)
}

// Config drives a generator.
type Config struct {
	// Seed makes the trace set reproducible; process p uses Seed + p.
	Seed int64
	// Processes overrides the machine's process count when positive.
	Processes int
	// MinTasks and MaxTasks bound the per-process task count (the paper
	// reports 300-800). Zero values default to 300 and 800.
	MinTasks, MaxTasks int
	// Annotate records each task's model features (transfer bytes,
	// memory footprint, contraction flops, memory-bound traffic) as
	// trace annotations, the training inputs for internal/model. The
	// features are computed from values the generator has already drawn,
	// so annotation never changes random-number consumption: the same
	// seed yields byte-identical task streams with or without it (the
	// golden digest tests pin this).
	Annotate bool
}

// annotator collects one feature row per task when enabled.
type annotator struct {
	on   bool
	rows [][]float64
}

func (a *annotator) add(f model.Features) {
	if a.on {
		a.rows = append(a.rows, f.Vector())
	}
}

func (a *annotator) install(tr *trace.Trace) {
	if a.on {
		tr.FeatureNames = append([]string(nil), model.Names...)
		tr.Features = a.rows
	}
}

func (c Config) processes(m cluster.Machine) int {
	if c.Processes > 0 {
		return c.Processes
	}
	return m.Processes()
}

func (c Config) taskCount(rng *rand.Rand) int {
	lo, hi := c.MinTasks, c.MaxTasks
	if lo <= 0 {
		lo = 300
	}
	if hi < lo {
		hi = 800
		if hi < lo {
			hi = lo
		}
	}
	return lo + rng.Intn(hi-lo+1)
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// GenerateHF produces one trace per process for the Hartree–Fock workload
// (SiOSi input, tile size 100, paper §5). Task mix:
//
//   - "twoel" Fock-matrix blocks (67%): fetch two Schwarz-screened density
//     tiles plus an index slab, then contract with a screened depth — the
//     dominant, communication-intensive task type;
//   - "transpose" (25%): fetch one screened tile, memory-bound reshape;
//   - "fock" updates (8%): small fetch, deeper per-tile arithmetic — the
//     compute-intensive small-transfer tasks §4.6 attributes SCMR's
//     strength to.
//
// With the Cascade model, the minimum capacity mc (two 100x100 tiles plus
// the largest screening slab) is 176 KB, the value paper Figs 7 and 9
// report.
func GenerateHF(m cluster.Machine, cfg Config) ([]*trace.Trace, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	const tile = 100 // paper §5: "HF expects a tile size and we set it to 100"
	traces := make([]*trace.Trace, 0, cfg.processes(m))
	for p := 0; p < cfg.processes(m); p++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p)))
		n := cfg.taskCount(rng)
		tr := &trace.Trace{App: "HF", Process: p}
		ann := annotator{on: cfg.Annotate}
		for i := 0; i < n; i++ {
			var task core.Task
			name := fmt.Sprintf("t%04d", i)
			d := Tile{Dims: []int{tile, tile}}
			switch r := rng.Float64(); {
			case r < 0.67: // twoel block
				// Schwarz screening drops a varying share of each density
				// tile's elements, so fetch sizes spread below the full
				// two-tile volume (skewed toward sparse blocks); the
				// densest block plus the largest index slab sets
				// mc = 176 KB.
				u := rng.Float64()
				survival := 0.15 + 0.85*u*u
				schwarz := uniform(rng, 0, 16*1024)
				bytes := 2*d.Bytes()*survival + schwarz
				depth := uniform(rng, 10, 24)
				flops := ContractionFlops(tile, int(depth), tile)
				task = core.Task{
					Name: "twoel." + name,
					Comm: m.TransferTime(bytes),
					Comp: m.ComputeTime(flops, 0),
					Mem:  bytes,
				}
				ann.add(model.Features{Bytes: bytes, Mem: bytes, Flops: flops})
			case r < 0.92: // tensor transpose of a screened tile
				bytes := d.Bytes() * uniform(rng, 0.3, 1)
				task = core.Task{
					Name: "trans." + name,
					Comm: m.TransferTime(bytes),
					Comp: m.ComputeTime(0, 2*bytes),
					Mem:  bytes,
				}
				ann.add(model.Features{Bytes: bytes, Mem: bytes, MemTraffic: 2 * bytes})
			default: // fock update: small fetch, deeper arithmetic
				bytes := uniform(rng, 4*1024, 16*1024)
				depth := uniform(rng, 6, 14)
				flops := ContractionFlops(tile, int(depth), tile)
				task = core.Task{
					Name: "fock." + name,
					Comm: m.TransferTime(bytes),
					Comp: m.ComputeTime(flops, 0),
					Mem:  bytes,
				}
				ann.add(model.Features{Bytes: bytes, Mem: bytes, Flops: flops})
			}
			tr.Tasks = append(tr.Tasks, task)
		}
		ann.install(tr)
		traces = append(traces, tr)
	}
	return traces, nil
}

// GenerateCCSD produces one trace per process for the CCSD workload
// (Uracil input, paper §5). The tensor contraction engine chooses tile
// sizes per program point, so occupied extents are drawn from [8,16] and
// virtual extents from [24,104] per block. Task mix:
//
//   - 4-index contractions (50%): fetch an integral tile (v,v,v,v) and an
//     amplitude tile (v,v,o,o), contract over two virtual indices with a
//     symmetry-screening survival fraction; 10% of them fetch both bra
//     and ket integral blocks (the 4-index-transform steps), which sets
//     mc near the 1.8 GB the paper reports;
//   - amplitude transposes (30%): memory-bound reshapes of (v,v,o,o);
//   - amplitude updates / DIIS (20%): fetch and stream one tile.
func GenerateCCSD(m cluster.Machine, cfg Config) ([]*trace.Trace, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	traces := make([]*trace.Trace, 0, cfg.processes(m))
	for p := 0; p < cfg.processes(m); p++ {
		rng := rand.New(rand.NewSource(cfg.Seed + 1_000_003*int64(p+1)))
		n := cfg.taskCount(rng)
		tr := &trace.Trace{App: "CCSD", Process: p}
		ann := annotator{on: cfg.Annotate}
		occ := func() int { return 8 + rng.Intn(9) }    // 8..16
		virt := func() int { return 24 + rng.Intn(89) } // 24..112
		for i := 0; i < n; i++ {
			var task core.Task
			name := fmt.Sprintf("t%04d", i)
			switch r := rng.Float64(); {
			case r < 0.50: // contraction over two virtual indices
				tv1, tv2, to := virt(), virt(), occ()
				integral := Tile{Dims: []int{tv1, tv1, tv2, tv2}}
				amplitude := Tile{Dims: []int{tv2, tv2, to, to}}
				bytes := integral.Bytes() + amplitude.Bytes()
				if rng.Float64() < 0.10 { // 4-index transform step
					bytes += integral.Bytes()
				}
				survive := uniform(rng, 0.1, 0.6) // symmetry screening
				flops := survive * ContractionFlops(tv1*tv1, tv2*tv2, to*to)
				task = core.Task{
					Name: "contr." + name,
					Comm: m.TransferTime(bytes),
					Comp: m.ComputeTime(flops, 0),
					Mem:  bytes,
				}
				ann.add(model.Features{Bytes: bytes, Mem: bytes, Flops: flops})
			case r < 0.80: // amplitude transpose
				tv, to := virt(), occ()
				t2 := Tile{Dims: []int{tv, tv, to, to}}
				task = core.Task{
					Name: "trans." + name,
					Comm: m.TransferTime(t2.Bytes()),
					Comp: m.ComputeTime(0, 2*t2.Bytes()),
					Mem:  t2.Bytes(),
				}
				ann.add(model.Features{Bytes: t2.Bytes(), Mem: t2.Bytes(), MemTraffic: 2 * t2.Bytes()})
			default: // amplitude update / DIIS
				tv, to := virt(), occ()
				t2 := Tile{Dims: []int{tv, tv, to, to}}
				task = core.Task{
					Name: "diis." + name,
					Comm: m.TransferTime(t2.Bytes()),
					Comp: m.ComputeTime(0, 3*t2.Bytes()),
					Mem:  t2.Bytes(),
				}
				ann.add(model.Features{Bytes: t2.Bytes(), Mem: t2.Bytes(), MemTraffic: 3 * t2.Bytes()})
			}
			tr.Tasks = append(tr.Tasks, task)
		}
		ann.install(tr)
		traces = append(traces, tr)
	}
	return traces, nil
}

// Generate dispatches on the application name ("HF" or "CCSD").
func Generate(app string, m cluster.Machine, cfg Config) ([]*trace.Trace, error) {
	switch app {
	case "HF", "hf":
		return GenerateHF(m, cfg)
	case "CCSD", "ccsd":
		return GenerateCCSD(m, cfg)
	}
	return nil, fmt.Errorf("chem: unknown application %q (want HF or CCSD)", app)
}
