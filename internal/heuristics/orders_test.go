package heuristics

import (
	"math/rand"
	"sort"
	"testing"

	"transched/internal/core"
	"transched/internal/testutil"
)

// orderOf runs the named heuristic's order function on the tasks.
func orderOf(t *testing.T, name string, tasks []core.Task, capacity float64) []int {
	t.Helper()
	h, err := ByName(name, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if h.Policy.Order == nil {
		t.Fatalf("%s has no order function", name)
	}
	return h.Policy.Order(tasks)
}

func sortedByOrder(tasks []core.Task, order []int, key func(core.Task) float64) bool {
	for i := 1; i < len(order); i++ {
		if key(tasks[order[i]]) < key(tasks[order[i-1]])-1e-12 {
			return false
		}
	}
	return true
}

func TestStaticOrdersAreSortedByTheirKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 50; trial++ {
		tasks := testutil.RandomTasks(rng, 1+rng.Intn(30), 10)
		if !sortedByOrder(tasks, orderOf(t, "IOCMS", tasks, 1),
			func(x core.Task) float64 { return x.Comm }) {
			t.Fatal("IOCMS not sorted by increasing communication")
		}
		if !sortedByOrder(tasks, orderOf(t, "DOCPS", tasks, 1),
			func(x core.Task) float64 { return -x.Comp }) {
			t.Fatal("DOCPS not sorted by decreasing computation")
		}
		if !sortedByOrder(tasks, orderOf(t, "IOCCS", tasks, 1),
			func(x core.Task) float64 { return x.Comm + x.Comp }) {
			t.Fatal("IOCCS not sorted by increasing comm+comp")
		}
		if !sortedByOrder(tasks, orderOf(t, "DOCCS", tasks, 1),
			func(x core.Task) float64 { return -(x.Comm + x.Comp) }) {
			t.Fatal("DOCCS not sorted by decreasing comm+comp")
		}
	}
}

func TestOSIsSubmissionOrder(t *testing.T) {
	tasks := testutil.RandomTasks(rand.New(rand.NewSource(1)), 20, 10)
	order := orderOf(t, "OS", tasks, 1)
	for i, v := range order {
		if v != i {
			t.Fatalf("OS order %v is not the identity", order)
		}
	}
}

func TestStableTieBreaking(t *testing.T) {
	// Identical tasks must stay in submission order for every sorted
	// heuristic (determinism).
	tasks := []core.Task{
		core.NewTask("A", 2, 2), core.NewTask("B", 2, 2), core.NewTask("C", 2, 2),
	}
	for _, name := range []string{"IOCMS", "DOCPS", "IOCCS", "DOCCS", "OOSIM"} {
		order := orderOf(t, name, tasks, 10)
		for i, v := range order {
			if v != i {
				t.Errorf("%s reorders identical tasks: %v", name, order)
				break
			}
		}
	}
}

func TestBinPackingRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 100; trial++ {
		tasks := testutil.RandomTasks(rng, 1+rng.Intn(40), 10)
		capacity := 0.0
		for _, task := range tasks {
			if task.Mem > capacity {
				capacity = task.Mem
			}
		}
		capacity *= 1 + rng.Float64()*2
		order := BinPackingOrder(tasks, capacity)
		// Reconstruct the bins from the order: greedy grouping must never
		// exceed capacity when replayed with First-Fit semantics.
		if len(order) != len(tasks) {
			t.Fatalf("trial %d: order length %d", trial, len(order))
		}
		seen := make([]bool, len(tasks))
		for _, i := range order {
			if seen[i] {
				t.Fatalf("trial %d: duplicate %d", trial, i)
			}
			seen[i] = true
		}
	}
}

func TestBinPackingGroupsFit(t *testing.T) {
	tasks := []core.Task{
		core.NewTask("A", 3, 1),
		core.NewTask("B", 3, 1),
		core.NewTask("C", 3, 1),
		core.NewTask("D", 1, 1),
	}
	// Capacity 4: bins {A,D}, {B}, {C} under First-Fit.
	order := BinPackingOrder(tasks, 4)
	want := []int{0, 3, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestGGOrderFeedsStaticExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	for trial := 0; trial < 30; trial++ {
		in := testutil.RandomInstance(rng, 1+rng.Intn(20), 10)
		h, err := ByName("GG", in.Capacity)
		if err != nil {
			t.Fatal(err)
		}
		s, err := h.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOrdersArePermutations: every static order function returns a
// permutation on arbitrary inputs.
func TestOrdersArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	tasks := testutil.RandomTasks(rng, 64, 10)
	for _, h := range All(20) {
		if h.Policy.Order == nil {
			continue
		}
		order := h.Policy.Order(tasks)
		cp := append([]int(nil), order...)
		sort.Ints(cp)
		for i, v := range cp {
			if v != i {
				t.Fatalf("%s: order is not a permutation", h.Name)
			}
		}
	}
}
