package heuristics

import (
	"math"
	"math/rand"
	"testing"

	"transched/internal/core"
	"transched/internal/flowshop"
	"transched/internal/paperdata"
	"transched/internal/testutil"
)

func TestRegistryHasAllFourteen(t *testing.T) {
	want := []string{"OS", "GG", "BP", "OOSIM", "IOCMS", "DOCPS", "IOCCS",
		"DOCCS", "LCMR", "SCMR", "MAMR", "OOLCMR", "OOSCMR", "OOMAMR"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestCategories(t *testing.T) {
	wantCat := map[string]Category{
		"OS": Baseline, "GG": Static, "BP": Static, "OOSIM": Static,
		"IOCMS": Static, "DOCPS": Static, "IOCCS": Static, "DOCCS": Static,
		"LCMR": Dynamic, "SCMR": Dynamic, "MAMR": Dynamic,
		"OOLCMR": Corrected, "OOSCMR": Corrected, "OOMAMR": Corrected,
	}
	for _, h := range All(10) {
		if h.Category != wantCat[h.Name] {
			t.Errorf("%s category = %v, want %v", h.Name, h.Category, wantCat[h.Name])
		}
		if h.Description == "" || h.Favorable == "" {
			t.Errorf("%s missing metadata", h.Name)
		}
	}
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		Baseline: "baseline", Static: "static", Dynamic: "dynamic",
		Corrected: "static+dynamic", Category(9): "Category(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestByName(t *testing.T) {
	h, err := ByName("OOSIM", 6)
	if err != nil || h.Name != "OOSIM" {
		t.Fatalf("ByName(OOSIM) = %v, %v", h.Name, err)
	}
	if _, err := ByName("nope", 6); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

// TestPaperMakespans runs the registry heuristics on the paper's example
// tables and compares with the figure makespans.
func TestPaperMakespans(t *testing.T) {
	check := func(in *core.Instance, wants map[string]float64) {
		t.Helper()
		for name, want := range wants {
			if name == "OMIM" {
				if got := flowshop.OMIM(in.Tasks); math.Abs(got-want) > 1e-9 {
					t.Errorf("OMIM = %g, want %g", got, want)
				}
				continue
			}
			h, err := ByName(name, in.Capacity)
			if err != nil {
				t.Fatal(err)
			}
			s, err := h.Run(in)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := s.Makespan(); math.Abs(got-want) > 1e-9 {
				t.Errorf("%s makespan = %g, want %g\n%s", name, got, want, s)
			}
		}
	}
	check(paperdata.Table3(), paperdata.Table3Makespans)
	check(paperdata.Table4(), paperdata.Table4Makespans)
	check(paperdata.Table5(), paperdata.Table5Makespans)
}

func TestBinPackingOrder(t *testing.T) {
	tasks := []core.Task{
		core.NewTask("A", 4, 1), // bin 0 (free 2)
		core.NewTask("B", 5, 1), // bin 1 (free 1)
		core.NewTask("C", 2, 1), // bin 0 (free 0)
		core.NewTask("D", 1, 1), // bin 1 (free 0)
		core.NewTask("E", 6, 1), // bin 2
	}
	order := BinPackingOrder(tasks, 6)
	want := []int{0, 2, 1, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("BinPackingOrder = %v, want %v", order, want)
		}
	}
}

func TestBinPackingOrderEmpty(t *testing.T) {
	if got := BinPackingOrder(nil, 5); len(got) != 0 {
		t.Errorf("empty BP order = %v", got)
	}
}

// TestAllHeuristicsFeasibleAndAboveOMIM is the registry-level invariant
// sweep: every heuristic on random instances and capacities in [mc, 2mc]
// yields a valid schedule with ratio-to-optimal >= 1.
func TestAllHeuristicsFeasibleAndAboveOMIM(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 120; trial++ {
		in := testutil.RandomInstance(rng, 1+rng.Intn(30), 10)
		omim := flowshop.OMIM(in.Tasks)
		for _, h := range All(in.Capacity) {
			s, err := h.Run(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, h.Name, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, h.Name, err)
			}
			if omim > 0 && s.Makespan()/omim < 1-1e-9 {
				t.Fatalf("trial %d %s: ratio %g < 1", trial, h.Name, s.Makespan()/omim)
			}
		}
	}
}

// TestOOSIMOptimalWhenUnconstrained: with capacity above the Johnson
// schedule's peak memory, OOSIM achieves exactly OMIM (Table 6 row 1).
func TestOOSIMOptimalWhenUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 150; trial++ {
		tasks := testutil.RandomTasks(rng, 1+rng.Intn(20), 10)
		js := flowshop.ScheduleOrderUnlimited(tasks, flowshop.JohnsonOrder(tasks))
		in := core.NewInstance(tasks, js.PeakMemory()+1e-6)
		h, _ := ByName("OOSIM", in.Capacity)
		s, err := h.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Makespan()-js.Makespan()) > 1e-6 {
			t.Fatalf("trial %d: OOSIM %g != OMIM %g at capacity %g",
				trial, s.Makespan(), js.Makespan(), in.Capacity)
		}
	}
}

// TestIOCMSOptimalComputeIntensive: Table 6 — IOCMS is optimal when memory
// is unrestricted and all tasks are compute intensive (it then coincides
// with Johnson's order).
func TestIOCMSOptimalComputeIntensive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		tasks := make([]core.Task, n)
		for i := range tasks {
			comm := rng.Float64() * 5
			tasks[i] = core.NewTask(string(rune('A'+i)), comm, comm+rng.Float64()*5)
		}
		in := core.NewInstance(tasks, 1e12)
		h, _ := ByName("IOCMS", in.Capacity)
		s, err := h.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if omim := flowshop.OMIM(tasks); math.Abs(s.Makespan()-omim) > 1e-9 {
			t.Fatalf("trial %d: IOCMS %g != OMIM %g on compute-intensive workload",
				trial, s.Makespan(), omim)
		}
	}
}

// TestDOCPSOptimalCommIntensive: Table 6 — DOCPS is optimal when memory is
// unrestricted and all tasks are communication intensive.
func TestDOCPSOptimalCommIntensive(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		tasks := make([]core.Task, n)
		for i := range tasks {
			comp := rng.Float64() * 5
			tasks[i] = core.NewTask(string(rune('A'+i)), comp+0.001+rng.Float64()*5, comp)
		}
		in := core.NewInstance(tasks, 1e12)
		h, _ := ByName("DOCPS", in.Capacity)
		s, err := h.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if omim := flowshop.OMIM(tasks); math.Abs(s.Makespan()-omim) > 1e-9 {
			t.Fatalf("trial %d: DOCPS %g != OMIM %g on communication-intensive workload",
				trial, s.Makespan(), omim)
		}
	}
}

func TestRunBatchesDelegates(t *testing.T) {
	in := paperdata.Table4()
	h, _ := ByName("LCMR", in.Capacity)
	s, err := h.RunBatches(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Assignments) != in.N() {
		t.Errorf("batched run lost tasks")
	}
}
