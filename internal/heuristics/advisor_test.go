package heuristics

import (
	"math/rand"
	"testing"

	"transched/internal/core"
	"transched/internal/testutil"
)

func TestRegimeString(t *testing.T) {
	for r, want := range map[Regime]string{
		Unrestricted: "unrestricted", Moderate: "moderate", Limited: "limited",
		Regime(7): "unknown",
	} {
		if got := r.String(); got != want {
			t.Errorf("Regime(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestProfilesRegimes(t *testing.T) {
	tasks := []core.Task{
		core.NewTask("A", 3, 2),
		core.NewTask("B", 1, 3),
		core.NewTask("C", 4, 4),
		core.NewTask("D", 2, 1),
	}
	// Johnson order B C A D: at t=8 tasks C(4), A(3), D(2) are resident,
	// so the OMIM schedule's peak memory is 9; mc is 4.
	unconstrained := Profiles(core.NewInstance(tasks, 9))
	if unconstrained.Regime != Unrestricted {
		t.Errorf("capacity 9 regime = %v, want unrestricted (peak %g)", unconstrained.Regime, unconstrained.OMIMPeak)
	}
	tight := Profiles(core.NewInstance(tasks, 4))
	if tight.Regime != Limited {
		t.Errorf("capacity 4 (= mc) regime = %v, want limited", tight.Regime)
	}
	mid := Profiles(core.NewInstance(tasks, 7))
	if mid.Regime != Moderate {
		t.Errorf("capacity 7 regime = %v, want moderate", mid.Regime)
	}
}

func TestProfilesFractions(t *testing.T) {
	tasks := []core.Task{
		core.NewTask("A", 1, 5), // compute intensive, small comm
		core.NewTask("B", 2, 5), // compute intensive, small comm
		core.NewTask("C", 8, 1), // communication intensive, large comm
		core.NewTask("D", 9, 1), // communication intensive, large comm
	}
	p := Profiles(core.NewInstance(tasks, 100))
	if p.FracCompute != 0.5 {
		t.Errorf("FracCompute = %g, want 0.5", p.FracCompute)
	}
	if p.FracComputeSmallComm != 1 {
		t.Errorf("FracComputeSmallComm = %g, want 1", p.FracComputeSmallComm)
	}
	if p.FracComputeLargeComm != 0 {
		t.Errorf("FracComputeLargeComm = %g, want 0", p.FracComputeLargeComm)
	}
}

func TestProfilesEmpty(t *testing.T) {
	p := Profiles(core.NewInstance(nil, 1))
	if p.FracCompute != 0 || p.OMIMPeak != 0 {
		t.Errorf("empty profile = %+v", p)
	}
}

func TestAdviseReturnsKnownHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	known := map[string]bool{}
	for _, n := range Names() {
		known[n] = true
	}
	for trial := 0; trial < 100; trial++ {
		in := testutil.RandomInstance(rng, 1+rng.Intn(20), 10)
		recs := Advise(in)
		if len(recs) == 0 {
			t.Fatalf("trial %d: no advice", trial)
		}
		for _, r := range recs {
			if !known[r] {
				t.Fatalf("trial %d: unknown heuristic %q", trial, r)
			}
		}
	}
}

func TestAdviseUnrestrictedPrefersOOSIM(t *testing.T) {
	tasks := []core.Task{core.NewTask("A", 1, 2), core.NewTask("B", 2, 3)}
	in := core.NewInstance(tasks, 1e9)
	recs := Advise(in)
	if recs[0] != "OOSIM" {
		t.Errorf("unrestricted advice = %v, want OOSIM first", recs)
	}
}

func TestAdviseLimitedMixed(t *testing.T) {
	// Half compute-intensive small-comm, half compute-intensive large-comm
	// => MAMR first per Table 6.
	tasks := []core.Task{
		core.NewTask("A", 1, 5),
		core.NewTask("B", 2, 6),
		core.NewTask("C", 8, 9),
		core.NewTask("D", 9, 10),
	}
	in := core.NewInstance(tasks, 9) // mc = 9: as tight as possible
	recs := Advise(in)
	if recs[0] != "MAMR" {
		t.Errorf("limited mixed advice = %v, want MAMR first", recs)
	}
}
