package heuristics

import (
	"sort"

	"transched/internal/core"
	"transched/internal/flowshop"
)

// Regime classifies the memory capacity the way paper Table 6 does.
type Regime int

const (
	// Unrestricted: the capacity is at least the peak memory of the
	// optimal infinite-memory (Johnson) schedule, so memory never binds.
	Unrestricted Regime = iota
	// Moderate: constrained, but close to the OMIM schedule's peak.
	Moderate
	// Limited: close to the minimum capacity mc that can run the tasks.
	Limited
)

func (r Regime) String() string {
	switch r {
	case Unrestricted:
		return "unrestricted"
	case Moderate:
		return "moderate"
	case Limited:
		return "limited"
	}
	return "unknown"
}

// Profile summarises the workload features Table 6 keys on.
type Profile struct {
	Regime Regime
	// FracCompute is the fraction of tasks with CP >= CM.
	FracCompute float64
	// FracComputeSmallComm is the fraction of compute-intensive tasks
	// among those with below-median communication time.
	FracComputeSmallComm float64
	// FracComputeLargeComm is the fraction of compute-intensive tasks
	// among those with above-median communication time.
	FracComputeLargeComm float64
	// OMIMPeak is the peak memory of the Johnson schedule.
	OMIMPeak float64
	// MinCapacity is mc, the largest single-task requirement.
	MinCapacity float64
}

// Profiles computes the Table 6 features of an instance.
func Profiles(in *core.Instance) Profile {
	tasks := in.Tasks
	p := Profile{MinCapacity: in.MinCapacity()}
	js := flowshop.ScheduleOrderUnlimited(tasks, flowshop.JohnsonOrder(tasks))
	p.OMIMPeak = js.PeakMemory()

	if len(tasks) == 0 {
		return p
	}
	nCompute := 0
	for _, t := range tasks {
		if t.ComputeIntensive() {
			nCompute++
		}
	}
	p.FracCompute = float64(nCompute) / float64(len(tasks))

	median := medianComm(tasks)
	var small, smallCompute, large, largeCompute int
	for _, t := range tasks {
		if t.Comm <= median {
			small++
			if t.ComputeIntensive() {
				smallCompute++
			}
		} else {
			large++
			if t.ComputeIntensive() {
				largeCompute++
			}
		}
	}
	if small > 0 {
		p.FracComputeSmallComm = float64(smallCompute) / float64(small)
	}
	if large > 0 {
		p.FracComputeLargeComm = float64(largeCompute) / float64(large)
	}

	switch {
	case in.Capacity >= p.OMIMPeak:
		p.Regime = Unrestricted
	case in.Capacity >= p.MinCapacity+(p.OMIMPeak-p.MinCapacity)/2:
		p.Regime = Moderate
	default:
		p.Regime = Limited
	}
	return p
}

func medianComm(tasks []core.Task) float64 {
	vals := make([]float64, len(tasks))
	for i, t := range tasks {
		vals[i] = t.Comm
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Advise recommends heuristics for an instance following paper Table 6.
// It returns acronyms in preference order; callers typically try the first
// and fall back to a sweep when unsure.
func Advise(in *core.Instance) []string {
	p := Profiles(in)
	const significant = 0.3
	switch p.Regime {
	case Unrestricted:
		// OOSIM is optimal; IOCMS/DOCPS are optimal for pure workloads.
		switch {
		case p.FracCompute >= 1:
			return []string{"OOSIM", "IOCMS"}
		case p.FracCompute <= 0:
			return []string{"OOSIM", "DOCPS"}
		default:
			return []string{"OOSIM"}
		}
	case Moderate:
		recs := make([]string, 0, 4)
		mixed := p.FracCompute >= significant && p.FracCompute <= 1-significant
		switch {
		case mixed:
			recs = append(recs, "OOMAMR", "OOLCMR", "OOSCMR")
		case p.FracCompute > 1-significant:
			recs = append(recs, "OOSCMR", "IOCCS")
		default:
			recs = append(recs, "OOLCMR", "DOCCS")
		}
		return recs
	default: // Limited
		switch {
		case p.FracComputeLargeComm >= significant && p.FracComputeSmallComm >= significant:
			return []string{"MAMR", "LCMR", "SCMR"}
		case p.FracComputeLargeComm >= significant:
			return []string{"LCMR", "MAMR"}
		case p.FracComputeSmallComm >= significant:
			return []string{"SCMR", "MAMR"}
		default:
			return []string{"MAMR", "BP"}
		}
	}
}
