// Package heuristics implements every data-transfer ordering strategy
// evaluated in the paper (§4): the static orders, the dynamic selection
// rules, the static orders with dynamic corrections, the two strategies
// from prior work (Gilmore–Gomory and bin-packing First-Fit), and the
// order-of-submission baseline. Each heuristic is exposed as a
// simulate.Policy plus metadata, keyed by the paper's acronym.
package heuristics

import (
	"fmt"
	"sort"

	"transched/internal/core"
	"transched/internal/flowshop"
	"transched/internal/simulate"
)

// Category classifies heuristics the way the paper's figures do.
type Category int

const (
	// Baseline is the order-of-submission strategy (OS).
	Baseline Category = iota
	// Static heuristics precompute the full order (paper §4.1, §4.4).
	Static
	// Dynamic heuristics choose the next task at run time (paper §4.2).
	Dynamic
	// Corrected heuristics follow a static order with dynamic corrections
	// (paper §4.3).
	Corrected
)

func (c Category) String() string {
	switch c {
	case Baseline:
		return "baseline"
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Corrected:
		return "static+dynamic"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Heuristic bundles a policy with its paper metadata.
type Heuristic struct {
	// Name is the paper's acronym (OS, OOSIM, IOCMS, ..., GG, BP).
	Name string
	// Description expands the acronym.
	Description string
	// Category is the paper's grouping.
	Category Category
	// Policy drives the simulate executors.
	Policy simulate.Policy
	// Favorable summarises the heuristic's favorable situation (Table 6).
	Favorable string
}

// Run schedules the instance with this heuristic.
func (h Heuristic) Run(in *core.Instance) (*core.Schedule, error) {
	return simulate.Run(in, h.Policy)
}

// RunBatches schedules the instance in submission batches of the given
// size with this heuristic (paper §6.3).
func (h Heuristic) RunBatches(in *core.Instance, batchSize int) (*core.Schedule, error) {
	return simulate.RunBatches(in, batchSize, h.Policy)
}

// sortOrder returns the permutation of task indices sorted by key
// (ascending), breaking ties by submission index. Keys are evaluated
// once per task, not once per comparison: the comparator sees the same
// float values either way, so the permutation is identical.
func sortOrder(tasks []core.Task, key func(core.Task) float64) []int {
	keys := make([]float64, len(tasks))
	order := make([]int, len(tasks))
	for i := range order {
		keys[i] = key(tasks[i])
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return keys[order[a]] < keys[order[b]]
	})
	return order
}

func identityOrder(tasks []core.Task) []int {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	return order
}

// BinPackingOrder implements the BP heuristic (paper §4.4): tasks are
// assigned to memory bins of the given capacity by First-Fit in submission
// order; the sequence is all tasks of bin 0, then bin 1, and so on.
func BinPackingOrder(tasks []core.Task, capacity float64) []int {
	type bin struct {
		free  float64
		items []int
	}
	var bins []bin
	for i, t := range tasks {
		placed := false
		for b := range bins {
			if t.Mem <= bins[b].free+1e-9 {
				bins[b].free -= t.Mem
				bins[b].items = append(bins[b].items, i)
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, bin{free: capacity - t.Mem, items: []int{i}})
		}
	}
	order := make([]int, 0, len(tasks))
	for _, b := range bins {
		order = append(order, b.items...)
	}
	return order
}

// All returns every heuristic evaluated in the paper, in the order the
// figures list them: OS, GG, BP, OOSIM, IOCMS, DOCPS, IOCCS, DOCCS, LCMR,
// SCMR, MAMR, OOLCMR, OOSCMR, OOMAMR. The capacity parameter is needed by
// BP (its bins have the target memory's size); every other heuristic
// ignores it.
func All(capacity float64) []Heuristic {
	johnson := func(tasks []core.Task) []int { return flowshop.JohnsonOrder(tasks) }
	return []Heuristic{
		{
			Name:        "OS",
			Description: "order of submission",
			Category:    Baseline,
			Policy:      simulate.Policy{Order: identityOrder},
			Favorable:   "none: the arbitrary submission order is the baseline",
		},
		{
			Name:        "GG",
			Description: "Gilmore-Gomory minimal-cost no-wait sequence",
			Category:    Static,
			Policy:      simulate.Policy{Order: flowshop.GilmoreGomoryOrder},
			Favorable:   "no-wait execution; degrades when extra memory allows overlap its sequence ignores",
		},
		{
			Name:        "BP",
			Description: "bin packing (First-Fit by memory)",
			Category:    Static,
			Policy: simulate.Policy{Order: func(tasks []core.Task) []int {
				return BinPackingOrder(tasks, capacity)
			}},
			Favorable: "tight memory: groups of tasks that fit together execute together",
		},
		{
			Name:        "OOSIM",
			Description: "order of optimal strategy infinite memory (Johnson)",
			Category:    Static,
			Policy:      simulate.Policy{Order: johnson},
			Favorable:   "memory capacity is not a restriction (optimal)",
		},
		{
			Name:        "IOCMS",
			Description: "increasing order of communication",
			Category:    Static,
			Policy: simulate.Policy{Order: func(tasks []core.Task) []int {
				return sortOrder(tasks, func(t core.Task) float64 { return t.Comm })
			}},
			Favorable: "no memory restriction and compute-intensive tasks (optimal)",
		},
		{
			Name:        "DOCPS",
			Description: "decreasing order of computation",
			Category:    Static,
			Policy: simulate.Policy{Order: func(tasks []core.Task) []int {
				return sortOrder(tasks, func(t core.Task) float64 { return -t.Comp })
			}},
			Favorable: "no memory restriction and communication-intensive tasks (optimal)",
		},
		{
			Name:        "IOCCS",
			Description: "increasing order of communication plus computation",
			Category:    Static,
			Policy: simulate.Policy{Order: func(tasks []core.Task) []int {
				return sortOrder(tasks, func(t core.Task) float64 { return t.Comm + t.Comp })
			}},
			Favorable: "moderate memory and most tasks highly compute intensive",
		},
		{
			Name:        "DOCCS",
			Description: "decreasing order of communication plus computation",
			Category:    Static,
			Policy: simulate.Policy{Order: func(tasks []core.Task) []int {
				return sortOrder(tasks, func(t core.Task) float64 { return -(t.Comm + t.Comp) })
			}},
			Favorable: "moderate memory and most tasks highly communication intensive",
		},
		{
			Name:        "LCMR",
			Description: "largest communication task respecting memory",
			Category:    Dynamic,
			Policy:      simulate.Policy{Crit: simulate.LargestComm},
			Favorable:   "limited memory and compute-intensive tasks with large communication times",
		},
		{
			Name:        "SCMR",
			Description: "smallest communication task respecting memory",
			Category:    Dynamic,
			Policy:      simulate.Policy{Crit: simulate.SmallestComm},
			Favorable:   "limited memory and compute-intensive tasks with small communication times",
		},
		{
			Name:        "MAMR",
			Description: "maximum accelerated task respecting memory",
			Category:    Dynamic,
			Policy:      simulate.Policy{Crit: simulate.MaxAccelerated},
			Favorable:   "limited memory with a significant percentage of tasks of both types",
		},
		{
			Name:        "OOLCMR",
			Description: "Johnson order, corrections pick largest communication",
			Category:    Corrected,
			Policy:      simulate.Policy{Order: johnson, Crit: simulate.LargestComm},
			Favorable:   "moderate memory and many communication-intensive tasks",
		},
		{
			Name:        "OOSCMR",
			Description: "Johnson order, corrections pick smallest communication",
			Category:    Corrected,
			Policy:      simulate.Policy{Order: johnson, Crit: simulate.SmallestComm},
			Favorable:   "moderate memory and many compute-intensive tasks",
		},
		{
			Name:        "OOMAMR",
			Description: "Johnson order, corrections pick maximum accelerated",
			Category:    Corrected,
			Policy:      simulate.Policy{Order: johnson, Crit: simulate.MaxAccelerated},
			Favorable:   "moderate memory with highly compute- and communication-intensive tasks",
		},
	}
}

// ByName returns the named heuristic from All(capacity).
func ByName(name string, capacity float64) (Heuristic, error) {
	for _, h := range All(capacity) {
		if h.Name == name {
			return h, nil
		}
	}
	return Heuristic{}, fmt.Errorf("heuristics: unknown heuristic %q", name)
}

// Names returns the acronyms of all heuristics in figure order.
func Names() []string {
	names := make([]string, 0, 14)
	for _, h := range All(1) {
		names = append(names, h.Name)
	}
	return names
}
