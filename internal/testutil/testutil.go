// Package testutil provides deterministic random-instance generators
// shared by the property tests across packages.
package testutil

import (
	"fmt"
	"math/rand"

	"transched/internal/core"
)

// RandomTasks returns n tasks with communication and computation times
// drawn uniformly from [0, maxDur) and memory equal to communication time
// (the paper's convention).
func RandomTasks(rng *rand.Rand, n int, maxDur float64) []core.Task {
	tasks := make([]core.Task, n)
	for i := range tasks {
		tasks[i] = core.NewTask(fmt.Sprintf("T%d", i), rng.Float64()*maxDur, rng.Float64()*maxDur)
	}
	return tasks
}

// RandomInstance returns a random instance whose capacity is drawn between
// mc (the largest task requirement) and 2*mc, matching the experimental
// sweep range of the paper. With all-zero tasks the capacity is 1.
func RandomInstance(rng *rand.Rand, n int, maxDur float64) *core.Instance {
	tasks := RandomTasks(rng, n, maxDur)
	in := core.NewInstance(tasks, 0)
	mc := in.MinCapacity()
	if mc == 0 {
		mc = 1
	}
	in.Capacity = mc * (1 + rng.Float64())
	return in
}

// RandomIntTasks returns n tasks with small integer durations in [0, maxV]
// (integer-valued float64s), handy for exact comparisons against brute
// force.
func RandomIntTasks(rng *rand.Rand, n, maxV int) []core.Task {
	tasks := make([]core.Task, n)
	for i := range tasks {
		tasks[i] = core.NewTask(fmt.Sprintf("T%d", i),
			float64(rng.Intn(maxV+1)), float64(rng.Intn(maxV+1)))
	}
	return tasks
}
