package lpsched

import (
	"math"
	"math/rand"
	"testing"

	"transched/internal/core"
	"transched/internal/flowshop"
	"transched/internal/paperdata"
	"transched/internal/testutil"
)

// TestExactTable2 solves the paper's Prop 1 instance to optimality: the
// MILP (which may order the two resources differently) reaches makespan
// 22, strictly better than the best common-order schedule, and the
// resulting schedule is not a permutation schedule.
func TestExactTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("exact MILP on 6 tasks takes ~15s")
	}
	in := paperdata.Table2()
	s, sol, err := SolveExact(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-paperdata.Table2DifferentOrderMakespan) > 1e-6 {
		t.Fatalf("MILP objective = %g, want %g", sol.Objective, paperdata.Table2DifferentOrderMakespan)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("repaired MILP schedule invalid: %v\n%s", err, s)
	}
	if math.Abs(s.Makespan()-22) > 1e-6 {
		t.Fatalf("makespan = %g, want 22", s.Makespan())
	}
	if s.Permutation() {
		t.Error("optimal Table 2 schedule should order resources differently (paper Prop 1)")
	}
}

// TestExactMatchesBruteForceSmall: on tiny instances, the exact MILP is at
// least as good as the best common-order schedule and at least OMIM.
func TestExactMatchesBruteForceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(3) // 2..4 tasks keeps each solve fast
		in := testutil.RandomInstance(rng, n, 5)
		s, sol, err := SolveExact(in, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid: %v\n%s", trial, err, s)
		}
		_, common := flowshop.BestPermutationLimited(in.Tasks, in.Capacity)
		omim := flowshop.OMIM(in.Tasks)
		if sol.Objective > common+1e-6 {
			t.Fatalf("trial %d: MILP %g worse than best common order %g", trial, sol.Objective, common)
		}
		if sol.Objective < omim-1e-6 {
			t.Fatalf("trial %d: MILP %g below OMIM %g", trial, sol.Objective, omim)
		}
		if s.Makespan() > sol.Objective+1e-6 {
			t.Fatalf("trial %d: repaired makespan %g above MILP objective %g", trial, s.Makespan(), sol.Objective)
		}
	}
}

// TestWindowedFeasible: lp.k yields valid schedules containing all tasks,
// at or above OMIM, for several window sizes.
func TestWindowedFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		in := testutil.RandomInstance(rng, 6+rng.Intn(6), 5)
		omim := flowshop.OMIM(in.Tasks)
		for _, k := range []int{3, 4} {
			res, err := Solve(in, Options{K: k, MaxNodesPerWindow: 1000})
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			s := res.Schedule
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d k=%d: invalid: %v\n%s", trial, k, err, s)
			}
			if len(s.Assignments) != in.N() {
				t.Fatalf("trial %d k=%d: %d assignments for %d tasks", trial, k, len(s.Assignments), in.N())
			}
			if s.Makespan() < omim-1e-6 {
				t.Fatalf("trial %d k=%d: makespan %g below OMIM %g", trial, k, s.Makespan(), omim)
			}
			if res.Windows != (in.N()+k-1)/k {
				t.Fatalf("trial %d k=%d: %d windows for %d tasks", trial, k, res.Windows, in.N())
			}
		}
	}
}

// TestWindowedSingleWindowIsExact: with k >= n and no node cap pressure,
// lp.k solves the whole instance at once and matches SolveExact.
func TestWindowedSingleWindowIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 6; trial++ {
		in := testutil.RandomInstance(rng, 3+rng.Intn(2), 5)
		res, err := Solve(in, Options{K: in.N(), MaxNodesPerWindow: 200000})
		if err != nil {
			t.Fatal(err)
		}
		_, sol, err := SolveExact(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Schedule.Makespan()-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: single-window lp.k %g != exact %g",
				trial, res.Schedule.Makespan(), sol.Objective)
		}
	}
}

// TestWindowedTable3: lp.k on the Table 3 instance stays between OMIM and
// the sequential bound for every k the paper uses.
func TestWindowedTable3(t *testing.T) {
	in := paperdata.Table3()
	for _, k := range []int{3, 4, 5, 6} {
		res, err := Solve(in, Options{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		m := res.Schedule.Makespan()
		if m < paperdata.Table3Makespans["OMIM"]-1e-6 || m > in.SequentialMakespan()+1e-6 {
			t.Errorf("k=%d: makespan %g outside [%g, %g]",
				k, m, paperdata.Table3Makespans["OMIM"], in.SequentialMakespan())
		}
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	in := core.NewInstance([]core.Task{core.NewTask("A", 5, 1)}, 2)
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("want error for task larger than capacity")
	}
	if _, _, err := SolveExact(in, 0); err == nil {
		t.Error("want error for task larger than capacity (exact)")
	}
}

func TestRepairIdempotentOnCleanSchedule(t *testing.T) {
	// A clean hand schedule must survive repair unchanged in makespan.
	s := paperdata.Table2DifferentOrderSchedule()
	r := repair(s)
	if err := r.Validate(); err != nil {
		t.Fatalf("repair broke a valid schedule: %v\n%s", err, r)
	}
	if r.Makespan() > s.Makespan()+1e-9 {
		t.Errorf("repair increased makespan %g -> %g", s.Makespan(), r.Makespan())
	}
}

func TestRepairFixesNoise(t *testing.T) {
	// Perturb a valid schedule by solver-scale noise; repair must produce
	// an exactly feasible schedule with (at most) the same makespan.
	rng := rand.New(rand.NewSource(313))
	for trial := 0; trial < 100; trial++ {
		in := testutil.RandomInstance(rng, 2+rng.Intn(6), 5)
		base, ok := flowshop.ScheduleOrderLimited(in.Tasks, rng.Perm(in.N()), in.Capacity)
		if !ok {
			t.Fatal("unschedulable random instance")
		}
		noisy := core.NewSchedule(in.Capacity)
		for _, a := range base.Assignments {
			a.CommStart += (rng.Float64() - 0.5) * 1e-7
			if a.CommStart < 0 {
				a.CommStart = 0
			}
			a.CompStart += (rng.Float64() - 0.5) * 1e-7
			if a.CompStart < a.CommEnd() {
				a.CompStart = a.CommEnd()
			}
			noisy.Append(a)
		}
		r := repair(noisy)
		if err := r.Validate(); err != nil {
			t.Fatalf("trial %d: repaired schedule invalid: %v", trial, err)
		}
		if r.Makespan() > base.Makespan()+1e-6 {
			t.Fatalf("trial %d: repair makespan %g above original %g", trial, r.Makespan(), base.Makespan())
		}
	}
}

func TestWindowedBoundaryCommitment(t *testing.T) {
	// Transfers committed in earlier windows must not move: run lp.3 and
	// check the final transfer order respects window grouping (a window's
	// transfers all start no earlier than every earlier window's).
	rng := rand.New(rand.NewSource(317))
	in := testutil.RandomInstance(rng, 9, 5)
	res, err := Solve(in, Options{K: 3, MaxNodesPerWindow: 2000})
	if err != nil {
		t.Fatal(err)
	}
	nameWindow := map[string]int{}
	for i, task := range in.Tasks {
		nameWindow[task.Name] = i / 3
	}
	order := res.Schedule.CommOrder()
	for i := 1; i < len(order); i++ {
		if nameWindow[order[i]] < nameWindow[order[i-1]] {
			t.Fatalf("transfer %s (window %d) after %s (window %d)",
				order[i], nameWindow[order[i]], order[i-1], nameWindow[order[i-1]])
		}
	}
}
