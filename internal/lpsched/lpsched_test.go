package lpsched

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"transched/internal/core"
	"transched/internal/flowshop"
	"transched/internal/milp"
	"transched/internal/paperdata"
	"transched/internal/testutil"
)

// TestExactTable2 solves the paper's Prop 1 instance to optimality: the
// MILP (which may order the two resources differently) reaches makespan
// 22, strictly better than the best common-order schedule, and the
// resulting schedule is not a permutation schedule.
func TestExactTable2(t *testing.T) {
	in := paperdata.Table2()
	s, sol, err := SolveExact(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-paperdata.Table2DifferentOrderMakespan) > 1e-6 {
		t.Fatalf("MILP objective = %g, want %g", sol.Objective, paperdata.Table2DifferentOrderMakespan)
	}
	if sol.Status != milp.Optimal {
		t.Fatalf("status = %v, want optimal (gap 0)", sol.Status)
	}
	if sol.Bound < sol.Objective-1e-9 || sol.Bound > sol.Objective+1e-9 {
		t.Fatalf("optimality gap: bound %g vs objective %g", sol.Bound, sol.Objective)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("repaired MILP schedule invalid: %v\n%s", err, s)
	}
	if math.Abs(s.Makespan()-22) > 1e-6 {
		t.Fatalf("makespan = %g, want 22", s.Makespan())
	}
	if s.Permutation() {
		t.Error("optimal Table 2 schedule should order resources differently (paper Prop 1)")
	}
}

// TestExactMatchesBruteForceSmall: on tiny instances, the exact MILP is at
// least as good as the best common-order schedule and at least OMIM.
func TestExactMatchesBruteForceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(3) // 2..4 tasks keeps each solve fast
		in := testutil.RandomInstance(rng, n, 5)
		s, sol, err := SolveExact(in, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid: %v\n%s", trial, err, s)
		}
		_, common := flowshop.BestPermutationLimited(in.Tasks, in.Capacity)
		omim := flowshop.OMIM(in.Tasks)
		if sol.Objective > common+1e-6 {
			t.Fatalf("trial %d: MILP %g worse than best common order %g", trial, sol.Objective, common)
		}
		if sol.Objective < omim-1e-6 {
			t.Fatalf("trial %d: MILP %g below OMIM %g", trial, sol.Objective, omim)
		}
		if s.Makespan() > sol.Objective+1e-6 {
			t.Fatalf("trial %d: repaired makespan %g above MILP objective %g", trial, s.Makespan(), sol.Objective)
		}
	}
}

// TestWindowedFeasible: lp.k yields valid schedules containing all tasks,
// at or above OMIM, for several window sizes.
func TestWindowedFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		in := testutil.RandomInstance(rng, 6+rng.Intn(6), 5)
		omim := flowshop.OMIM(in.Tasks)
		for _, k := range []int{3, 4} {
			res, err := Solve(in, Options{K: k, MaxNodesPerWindow: 1000})
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			s := res.Schedule
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d k=%d: invalid: %v\n%s", trial, k, err, s)
			}
			if len(s.Assignments) != in.N() {
				t.Fatalf("trial %d k=%d: %d assignments for %d tasks", trial, k, len(s.Assignments), in.N())
			}
			if s.Makespan() < omim-1e-6 {
				t.Fatalf("trial %d k=%d: makespan %g below OMIM %g", trial, k, s.Makespan(), omim)
			}
			if res.Windows != (in.N()+k-1)/k {
				t.Fatalf("trial %d k=%d: %d windows for %d tasks", trial, k, res.Windows, in.N())
			}
		}
	}
}

// TestWindowedSingleWindowIsExact: with k >= n and no node cap pressure,
// lp.k solves the whole instance at once and matches SolveExact.
func TestWindowedSingleWindowIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 6; trial++ {
		in := testutil.RandomInstance(rng, 3+rng.Intn(2), 5)
		res, err := Solve(in, Options{K: in.N(), MaxNodesPerWindow: 200000})
		if err != nil {
			t.Fatal(err)
		}
		_, sol, err := SolveExact(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Schedule.Makespan()-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: single-window lp.k %g != exact %g",
				trial, res.Schedule.Makespan(), sol.Objective)
		}
	}
}

// TestWindowedTable3: lp.k on the Table 3 instance stays between OMIM and
// the sequential bound for every k the paper uses.
func TestWindowedTable3(t *testing.T) {
	in := paperdata.Table3()
	for _, k := range []int{3, 4, 5, 6} {
		res, err := Solve(in, Options{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		m := res.Schedule.Makespan()
		if m < paperdata.Table3Makespans["OMIM"]-1e-6 || m > in.SequentialMakespan()+1e-6 {
			t.Errorf("k=%d: makespan %g outside [%g, %g]",
				k, m, paperdata.Table3Makespans["OMIM"], in.SequentialMakespan())
		}
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	in := core.NewInstance([]core.Task{core.NewTask("A", 5, 1)}, 2)
	if _, err := Solve(in, Options{}); err == nil {
		t.Error("want error for task larger than capacity")
	}
	if _, _, err := SolveExact(in, 0); err == nil {
		t.Error("want error for task larger than capacity (exact)")
	}
}

func TestRepairIdempotentOnCleanSchedule(t *testing.T) {
	// A clean hand schedule must survive repair unchanged in makespan.
	s := paperdata.Table2DifferentOrderSchedule()
	r := repair(s)
	if err := r.Validate(); err != nil {
		t.Fatalf("repair broke a valid schedule: %v\n%s", err, r)
	}
	if r.Makespan() > s.Makespan()+1e-9 {
		t.Errorf("repair increased makespan %g -> %g", s.Makespan(), r.Makespan())
	}
}

func TestRepairFixesNoise(t *testing.T) {
	// Perturb a valid schedule by solver-scale noise; repair must produce
	// an exactly feasible schedule with (at most) the same makespan.
	rng := rand.New(rand.NewSource(313))
	for trial := 0; trial < 100; trial++ {
		in := testutil.RandomInstance(rng, 2+rng.Intn(6), 5)
		base, ok := flowshop.ScheduleOrderLimited(in.Tasks, rng.Perm(in.N()), in.Capacity)
		if !ok {
			t.Fatal("unschedulable random instance")
		}
		noisy := core.NewSchedule(in.Capacity)
		for _, a := range base.Assignments {
			a.CommStart += (rng.Float64() - 0.5) * 1e-7
			if a.CommStart < 0 {
				a.CommStart = 0
			}
			a.CompStart += (rng.Float64() - 0.5) * 1e-7
			if a.CompStart < a.CommEnd() {
				a.CompStart = a.CommEnd()
			}
			noisy.Append(a)
		}
		r := repair(noisy)
		if err := r.Validate(); err != nil {
			t.Fatalf("trial %d: repaired schedule invalid: %v", trial, err)
		}
		if r.Makespan() > base.Makespan()+1e-6 {
			t.Fatalf("trial %d: repair makespan %g above original %g", trial, r.Makespan(), base.Makespan())
		}
	}
}

// TestWindowedWorkersDeterminism: the windowed driver inherits the MILP's
// deterministic-parallelism contract — every Workers setting produces a
// bit-identical schedule and identical solver statistics.
func TestWindowedWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	for trial := 0; trial < 4; trial++ {
		in := testutil.RandomInstance(rng, 7+rng.Intn(4), 5)
		base, err := Solve(in, Options{K: 3, MaxNodesPerWindow: 2000, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			res, err := Solve(in, Options{K: 3, MaxNodesPerWindow: 2000, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if res.Nodes != base.Nodes || res.SimplexIters != base.SimplexIters ||
				res.Fallbacks != base.Fallbacks ||
				math.Float64bits(res.Gap) != math.Float64bits(base.Gap) {
				t.Fatalf("trial %d workers=%d: stats diverge: %+v vs %+v", trial, workers, res, base)
			}
			a, b := base.Schedule.Assignments, res.Schedule.Assignments
			if len(a) != len(b) {
				t.Fatalf("trial %d workers=%d: schedule lengths differ", trial, workers)
			}
			for i := range a {
				if a[i].Task.Name != b[i].Task.Name ||
					math.Float64bits(a[i].CommStart) != math.Float64bits(b[i].CommStart) ||
					math.Float64bits(a[i].CompStart) != math.Float64bits(b[i].CompStart) {
					t.Fatalf("trial %d workers=%d: assignment %d differs: %+v vs %+v",
						trial, workers, i, a[i], b[i])
				}
			}
		}
	}
}

// TestWindowedDeadline: an already-expired deadline (under a synthetic
// clock; the driver never reads the wall clock) degrades every window to
// its greedy fallback but still yields a complete valid schedule.
func TestWindowedDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(337))
	in := testutil.RandomInstance(rng, 9, 5)
	t0 := time.Unix(1000, 0)
	res, err := Solve(in, Options{
		K: 3, MaxNodesPerWindow: 2000,
		Deadline: t0.Add(-time.Second),
		Clock:    func() time.Time { return t0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("invalid fallback schedule: %v\n%s", err, res.Schedule)
	}
	if len(res.Schedule.Assignments) != in.N() {
		t.Fatalf("%d assignments for %d tasks", len(res.Schedule.Assignments), in.N())
	}
	// The solver never got to search, so the bound cannot have closed:
	// unless the greedy completion was already optimal per window, the
	// result records fallbacks. Either way the run must not claim a
	// negative gap.
	if res.Gap < 0 {
		t.Fatalf("negative gap %g", res.Gap)
	}
	// And without the deadline the same options solve windows for real.
	full, err := Solve(in, Options{K: 3, MaxNodesPerWindow: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if full.Schedule.Makespan() > res.Schedule.Makespan()+1e-9 {
		t.Fatalf("search made the schedule worse: %g > %g",
			full.Schedule.Makespan(), res.Schedule.Makespan())
	}
}

// TestWindowedGapZeroOnSolvedWindows: with a generous node budget on small
// windows, every window solves to optimality and the driver reports gap 0.
func TestWindowedGapZeroOnSolvedWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(341))
	in := testutil.RandomInstance(rng, 6, 5)
	res, err := Solve(in, Options{K: 3, MaxNodesPerWindow: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap != 0 {
		t.Fatalf("gap = %g, want 0 for fully solved windows", res.Gap)
	}
	if res.SimplexIters <= 0 {
		t.Fatalf("SimplexIters = %d, want > 0", res.SimplexIters)
	}
}

// TestSolveExactWithDeadline: SolveExactWith surfaces milp.Expired as an
// error (there is no schedule to return) instead of inventing one.
func TestSolveExactWithDeadline(t *testing.T) {
	in := paperdata.Table2()
	t0 := time.Unix(1000, 0)
	_, sol, err := SolveExactWith(in, Options{
		Deadline: t0.Add(-time.Second),
		Clock:    func() time.Time { return t0 },
	})
	if err == nil {
		t.Fatalf("want error for expired exact solve, got status %v", sol.Status)
	}
}

func TestWindowedBoundaryCommitment(t *testing.T) {
	// Transfers committed in earlier windows must not move: run lp.3 and
	// check the final transfer order respects window grouping (a window's
	// transfers all start no earlier than every earlier window's).
	rng := rand.New(rand.NewSource(317))
	in := testutil.RandomInstance(rng, 9, 5)
	res, err := Solve(in, Options{K: 3, MaxNodesPerWindow: 2000})
	if err != nil {
		t.Fatal(err)
	}
	nameWindow := map[string]int{}
	for i, task := range in.Tasks {
		nameWindow[task.Name] = i / 3
	}
	order := res.Schedule.CommOrder()
	for i := 1; i < len(order); i++ {
		if nameWindow[order[i]] < nameWindow[order[i-1]] {
			t.Fatalf("transfer %s (window %d) after %s (window %d)",
				order[i], nameWindow[order[i]], order[i-1], nameWindow[order[i-1]])
		}
	}
}
