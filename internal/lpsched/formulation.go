// Package lpsched implements the paper's mixed-integer linear programming
// formulation of the data-transfer problem (§4.5) and the iterative
// windowed heuristic lp.k built on it. The MILP is the only strategy in
// the paper allowed to order the two resources differently.
//
// Variables, for tasks i ≠ j of a window:
//
//	s_i, s'_i  — communication / computation start times (e = s + CM,
//	             e' = s' + CP are folded in by substitution),
//	l          — makespan,
//	a_ij       — 1 iff j's transfer precedes i's on the link,
//	b_ij       — 1 iff j's computation precedes i's on the processing unit,
//	c_ij       — 1 iff j's computation completes before i's transfer starts.
//
// Constraints (L = Σ(CM+CP) is the big-M):
//
//	e'_i ≤ l                       (completion)
//	e_i  ≤ s'_i                    (a task computes after its transfer)
//	e_j  ≤ s_i + (1−a_ij)L,  e_i ≤ s_j + a_ij L      (link exclusivity)
//	e'_j ≤ s'_i + (1−b_ij)L, e'_i ≤ s'_j + b_ij L    (unit exclusivity)
//	e'_j ≤ s_i + (1−c_ij)L,  s_i ≤ e'_j + c_ij L     (c consistency)
//	Σ_{r≠i} (a_ir − c_ir)·Mem_r + Mem_i ≤ C          (memory at s_i)
//	a_ij + a_ji = 1, b_ij + b_ji = 1,
//	c_ij ≤ a_ij, c_ij ≤ b_ij, c_ij + c_ji ≤ 1        (helpers)
package lpsched

import (
	"fmt"
	"math"

	"transched/internal/core"
	"transched/internal/lp"
	"transched/internal/milp"
)

// winTask is one task of a window MILP, possibly with one or both events
// already committed by earlier windows.
type winTask struct {
	task core.Task
	// commFixed/compFixed indicate the event times are committed.
	commFixed bool
	compFixed bool
	commStart float64
	compStart float64
	// free tasks additionally respect the window's horizon: their events
	// may not be scheduled before the boundary.
	boundary float64
}

// formulation maps the window to MILP variable indices.
type formulation struct {
	prob  milp.Problem
	tasks []winTask
	// sVar[i], spVar[i]: comm/comp start variables; lVar: makespan.
	sVar, spVar []int
	lVar        int
	// aVar[i][j], bVar, cVar: pairwise booleans (i != j), -1 on diagonal.
	aVar, bVar, cVar [][]int
}

const tol = 1e-6

// buildFormulation assembles the paper's MILP over the window's tasks,
// with the memory capacity C. Boolean variables whose value is implied by
// fixed events are pre-fixed through equal bounds, which both shrinks the
// branch-and-bound tree and encodes the rolling-horizon commitments.
func buildFormulation(tasks []winTask, capacity float64) *formulation {
	n := len(tasks)
	f := &formulation{tasks: tasks}

	bigM := 1.0
	for _, t := range tasks {
		bigM += t.task.Comm + t.task.Comp
		// Committed events can lie beyond the sum of durations.
		if t.commFixed {
			bigM += t.commStart
		}
		if t.compFixed {
			bigM += t.compStart
		}
	}

	nv := 0
	alloc := func() int { nv++; return nv - 1 }
	f.sVar = make([]int, n)
	f.spVar = make([]int, n)
	for i := range tasks {
		f.sVar[i] = alloc()
		f.spVar[i] = alloc()
	}
	f.lVar = alloc()
	f.aVar = newSquare(n)
	f.bVar = newSquare(n)
	f.cVar = newSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			f.aVar[i][j] = alloc()
			f.bVar[i][j] = alloc()
			f.cVar[i][j] = alloc()
		}
	}

	p := &f.prob
	p.LP.NumVars = nv
	p.LP.Objective = make([]float64, nv)
	p.LP.Objective[f.lVar] = 1
	lower := make([]float64, nv)
	upper := make([]float64, nv)
	for v := range upper {
		upper[v] = math.Inf(1)
	}

	// Bounds on starts and booleans.
	for i, t := range tasks {
		if t.commFixed {
			lower[f.sVar[i]], upper[f.sVar[i]] = t.commStart, t.commStart
		} else {
			lower[f.sVar[i]] = t.boundary
		}
		if t.compFixed {
			lower[f.spVar[i]], upper[f.spVar[i]] = t.compStart, t.compStart
		} else if !t.commFixed {
			lower[f.spVar[i]] = t.boundary
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			for _, v := range [3]int{f.aVar[i][j], f.bVar[i][j], f.cVar[i][j]} {
				upper[v] = 1
			}
			f.prob.Integer = append(f.prob.Integer,
				f.aVar[i][j], f.bVar[i][j], f.cVar[i][j])
		}
	}
	p.LP.Lower, p.LP.Upper = lower, upper

	// Pre-fix booleans implied by committed events.
	f.prefixBooleans(lower, upper)

	// Completion and validity.
	for i, t := range tasks {
		p.LP.AddRow(lp.LE, -t.task.Comp, fmt.Sprintf("complete[%d]", i),
			lp.Entry{Var: f.spVar[i], Val: 1}, lp.Entry{Var: f.lVar, Val: -1})
		p.LP.AddRow(lp.LE, -t.task.Comm, fmt.Sprintf("valid[%d]", i),
			lp.Entry{Var: f.sVar[i], Val: 1}, lp.Entry{Var: f.spVar[i], Val: -1})
	}

	// Pairwise exclusivity and c-consistency.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			cmj, cpj := tasks[j].task.Comm, tasks[j].task.Comp
			// e_j <= s_i + (1 - a_ij) L    <=>  s_j - s_i + a_ij L <= L - CM_j
			p.LP.AddRow(lp.LE, bigM-cmj, fmt.Sprintf("link[%d,%d]", i, j),
				lp.Entry{Var: f.sVar[j], Val: 1}, lp.Entry{Var: f.sVar[i], Val: -1},
				lp.Entry{Var: f.aVar[i][j], Val: bigM})
			// e'_j <= s'_i + (1 - b_ij) L
			p.LP.AddRow(lp.LE, bigM-cpj, fmt.Sprintf("unit[%d,%d]", i, j),
				lp.Entry{Var: f.spVar[j], Val: 1}, lp.Entry{Var: f.spVar[i], Val: -1},
				lp.Entry{Var: f.bVar[i][j], Val: bigM})
			// e'_j <= s_i + (1 - c_ij) L
			p.LP.AddRow(lp.LE, bigM-cpj, fmt.Sprintf("cdef[%d,%d]", i, j),
				lp.Entry{Var: f.spVar[j], Val: 1}, lp.Entry{Var: f.sVar[i], Val: -1},
				lp.Entry{Var: f.cVar[i][j], Val: bigM})
			// s_i <= e'_j + c_ij L
			p.LP.AddRow(lp.LE, cpj, fmt.Sprintf("cneg[%d,%d]", i, j),
				lp.Entry{Var: f.sVar[i], Val: 1}, lp.Entry{Var: f.spVar[j], Val: -1},
				lp.Entry{Var: f.cVar[i][j], Val: -bigM})
		}
	}

	// Helper constraints.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p.LP.AddRow(lp.EQ, 1, fmt.Sprintf("aone[%d,%d]", i, j),
				lp.Entry{Var: f.aVar[i][j], Val: 1}, lp.Entry{Var: f.aVar[j][i], Val: 1})
			p.LP.AddRow(lp.EQ, 1, fmt.Sprintf("bone[%d,%d]", i, j),
				lp.Entry{Var: f.bVar[i][j], Val: 1}, lp.Entry{Var: f.bVar[j][i], Val: 1})
			p.LP.AddRow(lp.LE, 1, fmt.Sprintf("cone[%d,%d]", i, j),
				lp.Entry{Var: f.cVar[i][j], Val: 1}, lp.Entry{Var: f.cVar[j][i], Val: 1})
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p.LP.AddRow(lp.LE, 0, fmt.Sprintf("ca[%d,%d]", i, j),
				lp.Entry{Var: f.cVar[i][j], Val: 1}, lp.Entry{Var: f.aVar[i][j], Val: -1})
			p.LP.AddRow(lp.LE, 0, fmt.Sprintf("cb[%d,%d]", i, j),
				lp.Entry{Var: f.cVar[i][j], Val: 1}, lp.Entry{Var: f.bVar[i][j], Val: -1})
		}
	}

	// Memory at every transfer start.
	for i, t := range tasks {
		entries := make([]lp.Entry, 0, 2*(n-1))
		for r := 0; r < n; r++ {
			if r == i || tasks[r].task.Mem == 0 {
				continue
			}
			entries = append(entries,
				lp.Entry{Var: f.aVar[i][r], Val: tasks[r].task.Mem},
				lp.Entry{Var: f.cVar[i][r], Val: -tasks[r].task.Mem})
		}
		p.LP.AddRow(lp.LE, capacity-t.task.Mem, fmt.Sprintf("mem[%d]", i), entries...)
	}

	return f
}

func newSquare(n int) [][]int {
	sq := make([][]int, n)
	for i := range sq {
		sq[i] = make([]int, n)
		for j := range sq[i] {
			sq[i][j] = -1
		}
	}
	return sq
}

// prefixBooleans fixes a/b/c variables whose value follows from committed
// event times, tightening bounds in place.
func (f *formulation) prefixBooleans(lower, upper []float64) {
	n := len(f.tasks)
	fix := func(v int, val float64) {
		lower[v], upper[v] = val, val
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ti, tj := f.tasks[i], f.tasks[j]
			// a_ij: j's transfer before i's.
			if ti.commFixed && tj.commFixed {
				if before(tj.commStart, tj.task.Comm, ti.commStart, j, i) {
					fix(f.aVar[i][j], 1)
				} else {
					fix(f.aVar[i][j], 0)
				}
			} else if tj.commFixed && !ti.commFixed {
				// Free transfers happen at or after the boundary, which is
				// at or after every committed transfer's end.
				fix(f.aVar[i][j], 1)
			} else if ti.commFixed && !tj.commFixed {
				fix(f.aVar[i][j], 0)
			}
			// b_ij: j's computation before i's.
			if ti.compFixed && tj.compFixed {
				if before(tj.compStart, tj.task.Comp, ti.compStart, j, i) {
					fix(f.bVar[i][j], 1)
				} else {
					fix(f.bVar[i][j], 0)
				}
			} else if tj.compFixed && !ti.compFixed {
				fix(f.bVar[i][j], 1)
			} else if ti.compFixed && !tj.compFixed {
				fix(f.bVar[i][j], 0)
			}
			// c_ij: j's computation complete before i's transfer starts.
			if ti.commFixed && tj.compFixed {
				if tj.compStart+tj.task.Comp <= ti.commStart+tol {
					fix(f.cVar[i][j], 1)
				} else {
					fix(f.cVar[i][j], 0)
				}
			} else if ti.commFixed && !tj.compFixed && !tj.commFixed {
				// j is entirely in the future of a committed transfer.
				fix(f.cVar[i][j], 0)
			}
		}
	}
}

// before reports whether an event at (start1, dur1) precedes an event
// starting at start2, breaking exact ties (e.g. two zero-length transfers)
// by index so exactly one of a_ij/a_ji is set.
func before(start1, dur1, start2 float64, idx1, idx2 int) bool {
	e1 := start1 + dur1
	if math.Abs(e1-start2) <= tol && math.Abs(dur1) <= tol {
		return idx1 < idx2
	}
	return e1 <= start2+tol
}
