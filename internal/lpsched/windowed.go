package lpsched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"transched/internal/core"
	"transched/internal/flowshop"
	"transched/internal/lp"
	"transched/internal/milp"
)

// Options tunes the windowed MILP heuristic.
type Options struct {
	// K is the window size (the paper evaluates k = 3, 4, 5, 6).
	K int
	// MaxNodesPerWindow caps branch and bound per window (0 = 20000).
	MaxNodesPerWindow int
	// NoIncumbentSeed disables seeding each window's branch and bound with
	// the greedy completion's objective (ablation knob; seeding on is the
	// production configuration).
	NoIncumbentSeed bool
	// Workers bounds the goroutines each window's branch and bound uses
	// for node expansion (0 means GOMAXPROCS, 1 is the serial path). The
	// schedule is bit-identical at every setting.
	Workers int
	// Deadline, with Clock, stops branch and bound once Clock reports a
	// later time; expired windows fall back to the greedy completion.
	// Clock must come from the caller (detclock: this package never reads
	// the wall clock itself).
	Deadline time.Time
	Clock    func() time.Time
}

// Result carries the schedule plus solver statistics.
type Result struct {
	Schedule *core.Schedule
	// Windows is the number of MILP windows solved.
	Windows int
	// Nodes is the total number of branch-and-bound nodes.
	Nodes int
	// Fallbacks counts windows where the node budget expired before any
	// integer solution was found and the greedy completion was used.
	Fallbacks int
	// SimplexIters is the total number of simplex pivots across windows.
	SimplexIters int
	// Gap is the worst relative optimality gap over the windows: 0 when
	// every window was solved to proven optimality, otherwise the largest
	// (objective − bound) / max(1, |objective|) among windows that hit a
	// node, deadline, or context budget first.
	Gap float64
}

// Solve runs the iterative windowed MILP heuristic lp.k (paper §4.5):
// tasks are taken in submission order in windows of k; each window is
// scheduled by the MILP together with the still-resident and
// still-flexible tasks of earlier windows; at the window boundary, events
// that started before the boundary are fixed and later events remain
// flexible.
func Solve(in *core.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	k := opts.K
	if k <= 0 {
		k = 3
	}
	maxNodes := opts.MaxNodesPerWindow
	if maxNodes <= 0 {
		maxNodes = 20000
	}

	type slot struct {
		task      core.Task
		commStart float64
		compStart float64
		compFixed bool
	}
	var committed []slot // tasks with committed transfers (comm fixed)
	boundary := 0.0      // all committed transfers end at or before this
	res := &Result{}
	var prevBasis *lp.Basis // previous window's root basis (warm start)

	for lo := 0; lo < in.N(); lo += k {
		hi := lo + k
		if hi > in.N() {
			hi = in.N()
		}

		// Assemble the window: carryovers still visible to the MILP are
		// those whose computation is flexible or still occupying memory or
		// the processing unit at/after the boundary.
		var wts []winTask
		carryIdx := make([]int, 0, len(committed))
		for ci := range committed {
			c := &committed[ci]
			active := !c.compFixed || c.compStart+c.task.Comp > boundary-tol
			if !active {
				continue
			}
			wts = append(wts, winTask{
				task:      c.task,
				commFixed: true,
				commStart: c.commStart,
				compFixed: c.compFixed,
				compStart: c.compStart,
			})
			carryIdx = append(carryIdx, ci)
		}
		nCarry := len(wts)
		for i := lo; i < hi; i++ {
			wts = append(wts, winTask{task: in.Tasks[i], boundary: boundary})
		}

		f := buildFormulation(wts, in.Capacity)

		// Greedy fallback completion doubles as the incumbent seed.
		fbS, fbSp, fbObj := greedyCompletion(wts, in.Capacity)

		sol, err := milp.Solve(&f.prob, milp.Options{
			MaxNodes:           maxNodes,
			IncumbentObjective: fbObj + 1e-7,
			IncumbentSet:       !opts.NoIncumbentSeed,
			Workers:            opts.Workers,
			Deadline:           opts.Deadline,
			Clock:              opts.Clock,
			KnownLowerBound:    windowLowerBound(wts),
			KnownLowerBoundSet: true,
			RootBasis:          prevBasis,
		})
		if err != nil {
			return nil, fmt.Errorf("lpsched: window [%d,%d): %w", lo, hi, err)
		}
		res.Windows++
		res.Nodes += sol.Nodes
		res.SimplexIters += sol.SimplexIters
		if sol.RootBasis != nil {
			prevBasis = sol.RootBasis
		}

		sVals, spVals := fbS, fbSp
		usedObj := fbObj
		switch sol.Status {
		case milp.Optimal, milp.Feasible:
			sVals = make([]float64, len(wts))
			spVals = make([]float64, len(wts))
			for i := range wts {
				sVals[i] = sol.X[f.sVar[i]]
				spVals[i] = sol.X[f.spVar[i]]
			}
			usedObj = sol.Objective
		case milp.Infeasible:
			// Nothing beat the greedy incumbent; keep the fallback values.
			res.Fallbacks++
		case milp.Expired:
			// Deadline or context fired before any incumbent; the greedy
			// completion stands in and the window's bound dates the gap.
			res.Fallbacks++
		default:
			return nil, fmt.Errorf("lpsched: window [%d,%d): unexpected status %v", lo, hi, sol.Status)
		}
		if sol.Status != milp.Optimal {
			// Optimal proves gap 0; everything else is measured against the
			// proven bound. The intEps slack absorbs the incumbent-cutoff
			// epsilon so a fully drained tree (Infeasible: nothing beat the
			// seed) also reports 0 rather than solver noise.
			if g := (usedObj - 1e-6 - sol.Bound) / math.Max(1, math.Abs(usedObj)); g > res.Gap {
				res.Gap = g
			}
		}

		// Commit the new tasks' transfers and update flexible carryovers.
		for w, ci := range carryIdx {
			if !committed[ci].compFixed {
				committed[ci].compStart = spVals[w]
			}
		}
		for i := lo; i < hi; i++ {
			w := nCarry + i - lo
			committed = append(committed, slot{
				task:      in.Tasks[i],
				commStart: sVals[w],
				compStart: spVals[w],
			})
		}

		// New boundary: the end of the last committed transfer. Fix every
		// computation that starts before it.
		for _, c := range committed {
			if e := c.commStart + c.task.Comm; e > boundary {
				boundary = e
			}
		}
		for ci := range committed {
			if !committed[ci].compFixed && committed[ci].compStart < boundary-tol {
				committed[ci].compFixed = true
			}
		}
	}

	s := core.NewSchedule(in.Capacity)
	for _, c := range committed {
		s.Append(core.Assignment{Task: c.task, CommStart: c.commStart, CompStart: c.compStart})
	}
	res.Schedule = repair(s)
	return res, nil
}

// windowLowerBound is the externally proven lower bound handed to branch
// and bound as milp.Options.KnownLowerBound: the window makespan can never
// beat Johnson's memory-unlimited optimum over the window's tasks (OMIM is
// a valid bound even though the MILP may order the two resources
// differently — in a two-machine flowshop a common-order schedule is
// always among the optima), nor end before any already committed
// computation.
func windowLowerBound(wts []winTask) float64 {
	tasks := make([]core.Task, len(wts))
	for i, w := range wts {
		tasks[i] = w.task
	}
	lb := flowshop.OMIM(tasks)
	for _, w := range wts {
		if w.compFixed {
			if e := w.compStart + w.task.Comp; e > lb {
				lb = e
			}
		}
	}
	return lb
}

// SolveExact runs the MILP over the entire instance in one window with no
// carryovers — the paper's full formulation. Only practical for small
// instances; it is the ground truth the unit tests compare against.
func SolveExact(in *core.Instance, maxNodes int) (*core.Schedule, *milp.Solution, error) {
	return SolveExactWith(in, Options{MaxNodesPerWindow: maxNodes})
}

// SolveExactWith is SolveExact with the full option set: Workers fans the
// branch and bound out (bit-identical result at every setting), and
// Deadline/Clock bound the solve the same way they bound a window.
func SolveExactWith(in *core.Instance, opts Options) (*core.Schedule, *milp.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	wts := make([]winTask, in.N())
	for i, t := range in.Tasks {
		wts[i] = winTask{task: t}
	}
	f := buildFormulation(wts, in.Capacity)
	maxNodes := opts.MaxNodesPerWindow
	if maxNodes <= 0 {
		maxNodes = 500000
	}
	sol, err := milp.Solve(&f.prob, milp.Options{
		MaxNodes:           maxNodes,
		Workers:            opts.Workers,
		Deadline:           opts.Deadline,
		Clock:              opts.Clock,
		KnownLowerBound:    windowLowerBound(wts),
		KnownLowerBoundSet: true,
	})
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != milp.Optimal && sol.Status != milp.Feasible {
		return nil, sol, fmt.Errorf("lpsched: exact solve ended with status %v", sol.Status)
	}
	s := core.NewSchedule(in.Capacity)
	for i := range wts {
		s.Append(core.Assignment{
			Task:      wts[i].task,
			CommStart: sol.X[f.sVar[i]],
			CompStart: sol.X[f.spVar[i]],
		})
	}
	return repair(s), sol, nil
}

// greedyCompletion schedules the window's flexible events greedily —
// committed transfers in place, flexible computations and new tasks in
// submission order, each at the earliest feasible time — and returns the
// start times plus the resulting window makespan. It both seeds the
// branch-and-bound incumbent and serves as the fallback when the node
// budget expires.
func greedyCompletion(wts []winTask, capacity float64) (sVals, spVals []float64, obj float64) {
	n := len(wts)
	sVals = make([]float64, n)
	spVals = make([]float64, n)

	// Committed events first.
	type rel struct{ at, mem float64 }
	var releases []rel
	tauComm, tauComp := 0.0, 0.0
	for i, w := range wts {
		if w.commFixed {
			sVals[i] = w.commStart
			if e := w.commStart + w.task.Comm; e > tauComm {
				tauComm = e
			}
		}
		if w.compFixed {
			spVals[i] = w.compStart
			if e := w.compStart + w.task.Comp; e > tauComp {
				tauComp = e
			}
		}
	}

	memAt := func(t float64) float64 {
		use := 0.0
		for _, r := range releases {
			if r.at > t+tol {
				use += r.mem
			}
		}
		return use
	}
	// Pre-register fully committed tasks as releases.
	for _, w := range wts {
		if w.commFixed && w.compFixed {
			releases = append(releases, rel{at: w.compStart + w.task.Comp, mem: w.task.Mem})
		}
	}

	// Flexible computations of committed transfers, in transfer order.
	type flexComp struct {
		idx   int
		start float64
	}
	var flex []flexComp
	for i, w := range wts {
		if w.commFixed && !w.compFixed {
			flex = append(flex, flexComp{idx: i, start: w.commStart})
		}
	}
	sort.SliceStable(flex, func(a, b int) bool { return flex[a].start < flex[b].start })
	for _, fc := range flex {
		w := wts[fc.idx]
		start := math.Max(w.commStart+w.task.Comm, tauComp)
		spVals[fc.idx] = start
		tauComp = start + w.task.Comp
		releases = append(releases, rel{at: tauComp, mem: w.task.Mem})
	}

	// New tasks in submission order, waiting for memory releases.
	for i, w := range wts {
		if w.commFixed {
			continue
		}
		start := math.Max(tauComm, w.boundary)
		for memAt(start)+w.task.Mem > capacity+tol {
			// Advance to the next release strictly after start.
			next := math.Inf(1)
			for _, r := range releases {
				if r.at > start+tol && r.at < next {
					next = r.at
				}
			}
			if math.IsInf(next, 1) {
				break // cannot happen when Mem <= capacity
			}
			start = next
		}
		sVals[i] = start
		tauComm = start + w.task.Comm
		comp := math.Max(tauComm, tauComp)
		spVals[i] = comp
		tauComp = comp + w.task.Comp
		releases = append(releases, rel{at: tauComp, mem: w.task.Mem})
	}

	for i, w := range wts {
		if e := spVals[i] + w.task.Comp; e > obj {
			obj = e
		}
	}
	return sVals, spVals, obj
}
