package lpsched

import (
	"math"
	"testing"

	"transched/internal/core"
	"transched/internal/milp"
)

// countFixed returns how many of the formulation's integer variables have
// been pre-fixed through equal bounds.
func countFixed(f *formulation) int {
	n := 0
	for _, j := range f.prob.Integer {
		if f.prob.LP.Lower[j] == f.prob.LP.Upper[j] {
			n++
		}
	}
	return n
}

func TestFormulationSizes(t *testing.T) {
	wts := []winTask{
		{task: core.NewTask("A", 1, 2)},
		{task: core.NewTask("B", 3, 4)},
		{task: core.NewTask("C", 5, 6)},
	}
	f := buildFormulation(wts, 10)
	n := 3
	// Variables: 2n starts + 1 makespan + 3n(n-1) booleans.
	wantVars := 2*n + 1 + 3*n*(n-1)
	if f.prob.LP.NumVars != wantVars {
		t.Fatalf("NumVars = %d, want %d", f.prob.LP.NumVars, wantVars)
	}
	if len(f.prob.Integer) != 3*n*(n-1) {
		t.Fatalf("%d integer vars, want %d", len(f.prob.Integer), 3*n*(n-1))
	}
	// Rows: 2n (completion+validity) + 4n(n-1) (link/unit/c-def/c-neg)
	// + 3*C(n,2) (aone/bone/cone) + 2n(n-1) (ca/cb) + n (memory).
	wantRows := 2*n + 4*n*(n-1) + 3*n*(n-1)/2 + 2*n*(n-1) + n
	if len(f.prob.LP.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(f.prob.LP.Rows), wantRows)
	}
	// Fully free window: nothing pre-fixed.
	if got := countFixed(f); got != 0 {
		t.Fatalf("%d booleans pre-fixed in a free window", got)
	}
}

func TestPrefixBooleansFixedPairs(t *testing.T) {
	// Two fully committed tasks plus one free one: the a/b/c booleans of
	// the committed pair are fixed, as are the orderings of committed vs
	// free events.
	wts := []winTask{
		{task: core.NewTask("A", 2, 1), commFixed: true, commStart: 0, compFixed: true, compStart: 2},
		{task: core.NewTask("B", 1, 1), commFixed: true, commStart: 2, compFixed: true, compStart: 3},
		{task: core.NewTask("C", 1, 1), boundary: 3},
	}
	f := buildFormulation(wts, 10)
	mustFixed := func(v int, val float64) {
		t.Helper()
		if f.prob.LP.Lower[v] != val || f.prob.LP.Upper[v] != val {
			t.Fatalf("var %d bounds [%g,%g], want fixed %g",
				v, f.prob.LP.Lower[v], f.prob.LP.Upper[v], val)
		}
	}
	// a[1][0] = 1: A's transfer [0,2) precedes B's [2,3).
	mustFixed(f.aVar[1][0], 1)
	mustFixed(f.aVar[0][1], 0)
	// b[1][0] = 1: A computes [2,3) before B [3,4).
	mustFixed(f.bVar[1][0], 1)
	// c[1][0] = 0: A's computation (ends 3) has not finished by B's
	// transfer start (2).
	mustFixed(f.cVar[1][0], 0)
	// Free task C follows all committed transfers: a[2][0] = a[2][1] = 1.
	mustFixed(f.aVar[2][0], 1)
	mustFixed(f.aVar[2][1], 1)
	mustFixed(f.aVar[0][2], 0)
	// Committed vs free c: a committed transfer cannot wait for a free
	// computation: c[0][2] = 0.
	mustFixed(f.cVar[0][2], 0)
}

func TestFormulationSolvesTinyInstanceExactly(t *testing.T) {
	// One task: makespan = comm + comp.
	wts := []winTask{{task: core.NewTask("A", 2, 3)}}
	f := buildFormulation(wts, 10)
	sol, err := milp.Solve(&f.prob, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.Optimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("status %v obj %g, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestFormulationMemoryConstraintBinds(t *testing.T) {
	// Two tasks of memory 3 with capacity 4: transfers cannot be resident
	// together, forcing serialisation: makespan 3+1 for the first, then
	// the second transfer waits for the first computation end (4) =>
	// 4+3+1 = 8. With capacity 6 both prefetch: makespan 3+3+1 = 7.
	mk := func(capacity float64) float64 {
		wts := []winTask{
			{task: core.NewTask("A", 3, 1)},
			{task: core.NewTask("B", 3, 1)},
		}
		f := buildFormulation(wts, capacity)
		sol, err := milp.Solve(&f.prob, milp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != milp.Optimal {
			t.Fatalf("status %v", sol.Status)
		}
		return sol.Objective
	}
	if got := mk(4); math.Abs(got-8) > 1e-6 {
		t.Fatalf("capacity 4: %g, want 8", got)
	}
	if got := mk(6); math.Abs(got-7) > 1e-6 {
		t.Fatalf("capacity 6: %g, want 7", got)
	}
}

func TestGreedyCompletionRespectsCommitments(t *testing.T) {
	wts := []winTask{
		{task: core.NewTask("A", 2, 5), commFixed: true, commStart: 0}, // comp flexible
		{task: core.NewTask("B", 1, 1), boundary: 2},
	}
	sVals, spVals, obj := greedyCompletion(wts, 10)
	if sVals[0] != 0 {
		t.Fatalf("committed transfer moved to %g", sVals[0])
	}
	if spVals[0] < 2 {
		t.Fatalf("A computes at %g before its transfer ends", spVals[0])
	}
	if sVals[1] < 2 {
		t.Fatalf("B transfers at %g before the boundary", sVals[1])
	}
	if obj < spVals[0]+5-1e-9 {
		t.Fatalf("objective %g below A's completion", obj)
	}
	// The completion is feasible as an LP incumbent: rebuild a schedule
	// and validate.
	s := core.NewSchedule(10)
	for i, w := range wts {
		s.Append(core.Assignment{Task: w.task, CommStart: sVals[i], CompStart: spVals[i]})
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("greedy completion infeasible: %v", err)
	}
}

func TestBeforeTieBreak(t *testing.T) {
	// Two zero-length transfers at the same instant: exactly one order.
	ab := before(1, 0, 1, 0, 1)
	ba := before(1, 0, 1, 1, 0)
	if ab == ba {
		t.Fatalf("tie-break inconsistent: %v %v", ab, ba)
	}
}
