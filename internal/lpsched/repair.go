package lpsched

import (
	"sort"

	"transched/internal/core"
)

// repair rebuilds exact event times from the structure of an approximate
// (MILP-produced) schedule. Big-M MILP solutions carry numeric noise on
// the order of the solver tolerances, which would trip the exact
// feasibility validator; repair extracts the decisions — the transfer
// order, the computation order, and which computations complete before
// which transfers (the c booleans) — and recomputes the earliest times
// consistent with them.
//
// Every extracted constraint is satisfied by the input times, so the
// recomputed times are a pointwise lower bound of the input: the makespan
// never grows beyond the solver's answer (modulo the solver's own
// tolerance), and the memory constraint keeps holding because a task is
// resident at a transfer start in the repaired schedule only if it was
// resident (and therefore counted) in the solver's solution.
func repair(s *core.Schedule) *core.Schedule {
	n := len(s.Assignments)
	if n == 0 {
		return s
	}
	as := s.Assignments

	commOrder := make([]int, n)
	compOrder := make([]int, n)
	for i := range commOrder {
		commOrder[i] = i
		compOrder[i] = i
	}
	sort.SliceStable(commOrder, func(a, b int) bool {
		return as[commOrder[a]].CommStart < as[commOrder[b]].CommStart
	})
	sort.SliceStable(compOrder, func(a, b int) bool {
		return as[compOrder[a]].CompStart < as[compOrder[b]].CompStart
	})

	// releaseBefore[i] lists tasks whose computation completed before i's
	// transfer started in the input schedule.
	releaseBefore := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if as[j].CompEnd() <= as[i].CommStart+tol {
				releaseBefore[i] = append(releaseBefore[i], j)
			}
		}
	}

	comm := make([]float64, n)
	comp := make([]float64, n)
	// Least-fixed-point iteration: all constraints are x >= expr over
	// earlier events, so n rounds suffice (each round finalises at least
	// the next event in global time order).
	for round := 0; round < n+1; round++ {
		changed := false
		raise := func(x *float64, v float64) {
			if v > *x {
				*x = v
				changed = true
			}
		}
		for p, i := range commOrder {
			if p > 0 {
				prev := commOrder[p-1]
				raise(&comm[i], comm[prev]+as[prev].Task.Comm)
			}
			for _, j := range releaseBefore[i] {
				raise(&comm[i], comp[j]+as[j].Task.Comp)
			}
		}
		for q, i := range compOrder {
			raise(&comp[i], comm[i]+as[i].Task.Comm)
			if q > 0 {
				prev := compOrder[q-1]
				raise(&comp[i], comp[prev]+as[prev].Task.Comp)
			}
		}
		if !changed {
			break
		}
	}

	out := core.NewSchedule(s.Capacity)
	for _, p := range commOrder {
		out.Append(core.Assignment{Task: as[p].Task, CommStart: comm[p], CompStart: comp[p]})
	}
	return out
}
