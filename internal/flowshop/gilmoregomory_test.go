package flowshop

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"transched/internal/core"
	"transched/internal/testutil"
)

func TestNoWaitMakespanByHand(t *testing.T) {
	// Two tasks: X(comm 2, comp 3), Y(comm 4, comp 1).
	// Order X,Y: 2+4 (comm) + max(0, 3-4) + 1 = 7.
	// Order Y,X: 6 + max(0, 1-2) + 3 = 9.
	tasks := []core.Task{core.NewTask("X", 2, 3), core.NewTask("Y", 4, 1)}
	if got := NoWaitMakespan(tasks, []int{0, 1}); got != 7 {
		t.Errorf("NoWaitMakespan(X,Y) = %g, want 7", got)
	}
	if got := NoWaitMakespan(tasks, []int{1, 0}); got != 9 {
		t.Errorf("NoWaitMakespan(Y,X) = %g, want 9", got)
	}
	if got := NoWaitMakespan(tasks, nil); got != 0 {
		t.Errorf("NoWaitMakespan(empty) = %g, want 0", got)
	}
}

func TestGilmoreGomoryTrivialSizes(t *testing.T) {
	if got := GilmoreGomoryOrder(nil); len(got) != 0 {
		t.Errorf("empty order = %v", got)
	}
	one := []core.Task{core.NewTask("A", 2, 3)}
	if got := GilmoreGomoryOrder(one); len(got) != 1 || got[0] != 0 {
		t.Errorf("single-task order = %v", got)
	}
}

func TestGilmoreGomoryIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		tasks := testutil.RandomTasks(rng, n, 100)
		order := GilmoreGomoryOrder(tasks)
		if len(order) != n {
			t.Fatalf("trial %d: order has %d entries for %d tasks", trial, len(order), n)
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("trial %d: order %v is not a permutation", trial, order)
			}
			seen[i] = true
		}
	}
}

// TestGilmoreGomoryOptimal compares GG against exhaustive search of the
// no-wait makespan on random instances. Gilmore–Gomory is exact for this
// problem.
func TestGilmoreGomoryOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(7)
		tasks := testutil.RandomTasks(rng, n, 10)
		_, best := BestNoWaitPermutation(tasks)
		got := NoWaitMakespan(tasks, GilmoreGomoryOrder(tasks))
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: GG makespan %g, optimal %g, tasks %v",
				trial, got, best, tasks)
		}
	}
}

// TestGilmoreGomoryOptimalInts repeats the comparison with small integer
// durations, which produce many ties and multi-cycle assignments.
func TestGilmoreGomoryOptimalInts(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 600; trial++ {
		n := 2 + rng.Intn(6)
		tasks := testutil.RandomIntTasks(rng, n, 4)
		_, best := BestNoWaitPermutation(tasks)
		got := NoWaitMakespan(tasks, GilmoreGomoryOrder(tasks))
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: GG makespan %g, optimal %g, tasks %v",
				trial, got, best, tasks)
		}
	}
}

func TestGilmoreGomoryQuick(t *testing.T) {
	f := func(pairs [5][2]uint8) bool {
		tasks := make([]core.Task, 0, 5)
		for i, p := range pairs {
			tasks = append(tasks, core.NewTask(string(rune('A'+i)), float64(p[0]%9), float64(p[1]%9)))
		}
		_, best := BestNoWaitPermutation(tasks)
		return math.Abs(NoWaitMakespan(tasks, GilmoreGomoryOrder(tasks))-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestGilmoreGomoryLargeRuns exercises the patching machinery (including
// long chains) on sizes where only feasibility can be asserted.
func TestGilmoreGomoryLargeRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tasks := testutil.RandomIntTasks(rng, 500, 3) // heavy ties => many cycles
	order := GilmoreGomoryOrder(tasks)
	seen := make([]bool, len(tasks))
	for _, i := range order {
		seen[i] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("task %d missing from GG order", i)
		}
	}
	// The GG makespan must be at least the trivial lower bound and at most
	// the sequential upper bound.
	in := core.NewInstance(tasks, 0)
	m := NoWaitMakespan(tasks, order)
	if m < in.ResourceLowerBound()-1e-9 || m > in.SequentialMakespan()+1e-9 {
		t.Errorf("GG makespan %g outside [%g, %g]", m, in.ResourceLowerBound(), in.SequentialMakespan())
	}
}
