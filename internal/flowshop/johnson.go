// Package flowshop implements the 2-machine flowshop algorithms the paper
// builds on: Johnson's rule (optimal with unlimited memory, paper Alg 1),
// the Gilmore–Gomory no-wait sequencing algorithm (paper §4.4), and
// exhaustive optimal schedulers used as ground truth in tests and for the
// small counter-example instances.
package flowshop

import (
	"sort"

	"transched/internal/core"
)

// JohnsonOrder returns the task indices in Johnson's order (paper
// Algorithm 1): compute-intensive tasks (CP >= CM) sorted by non-decreasing
// communication time, followed by communication-intensive tasks sorted by
// non-increasing computation time. With unlimited memory this order attains
// the optimal makespan (paper Theorem 1).
//
// Ties are broken by submission index so the order is deterministic.
func JohnsonOrder(tasks []core.Task) []int {
	var s1, s2 []int
	for i, t := range tasks {
		if t.ComputeIntensive() {
			s1 = append(s1, i)
		} else {
			s2 = append(s2, i)
		}
	}
	sort.SliceStable(s1, func(a, b int) bool {
		return tasks[s1[a]].Comm < tasks[s1[b]].Comm
	})
	sort.SliceStable(s2, func(a, b int) bool {
		return tasks[s2[a]].Comp > tasks[s2[b]].Comp
	})
	return append(s1, s2...)
}

// ScheduleOrderUnlimited builds the schedule obtained by processing tasks
// in the given order on both resources with no memory constraint: each
// transfer starts as soon as the link is free, each computation as soon as
// both its transfer is done and the processing unit is free (paper
// Algorithm 1, lines 5–13).
func ScheduleOrderUnlimited(tasks []core.Task, order []int) *core.Schedule {
	s := core.NewSchedule(infinity)
	tauComm, tauComp := 0.0, 0.0
	for _, i := range order {
		t := tasks[i]
		commStart := tauComm
		compStart := commStart + t.Comm
		if tauComp > compStart {
			compStart = tauComp
		}
		s.Append(core.Assignment{Task: t, CommStart: commStart, CompStart: compStart})
		tauComm = commStart + t.Comm
		tauComp = compStart + t.Comp
	}
	return s
}

// infinity is a capacity large enough to never constrain any instance in
// practice while staying finite (so schedule validation arithmetic stays
// well-defined).
const infinity = 1e300

// OMIM (optimal makespan, infinite memory) returns the makespan of
// Johnson's schedule for the instance's tasks, ignoring the memory
// capacity. It is the lower bound every heuristic is measured against
// (ratio to optimal, paper §6).
func OMIM(tasks []core.Task) float64 {
	return ScheduleOrderUnlimited(tasks, JohnsonOrder(tasks)).Makespan()
}

// MakespanOrderUnlimited returns the makespan of executing the given order
// on both resources with no memory constraint, without materialising the
// schedule. It is the inner loop of the exhaustive searches.
func MakespanOrderUnlimited(tasks []core.Task, order []int) float64 {
	tauComm, tauComp := 0.0, 0.0
	for _, i := range order {
		t := tasks[i]
		compStart := tauComm + t.Comm
		if tauComp > compStart {
			compStart = tauComp
		}
		tauComm += t.Comm
		tauComp = compStart + t.Comp
	}
	return tauComp
}

// SwapDoesNotImprove reports whether swapping the contiguous tasks A then B
// cannot improve the makespan, per the three sufficient conditions of
// paper Lemma 1:
//
//	(i)   CP_A >= CM_A, CP_B >= CM_B, CM_A <= CM_B
//	(ii)  CP_A <  CM_A, CP_B <  CM_B, CP_A >= CP_B
//	(iii) CP_A >= CM_A, CP_B <  CM_B
//
// The property tests exercise the lemma by simulating both orders.
func SwapDoesNotImprove(a, b core.Task) bool {
	switch {
	case a.Comp >= a.Comm && b.Comp >= b.Comm && a.Comm <= b.Comm:
		return true
	case a.Comp < a.Comm && b.Comp < b.Comm && a.Comp >= b.Comp:
		return true
	case a.Comp >= a.Comm && b.Comp < b.Comm:
		return true
	}
	return false
}
