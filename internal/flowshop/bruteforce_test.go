package flowshop

import (
	"math"
	"math/rand"
	"testing"

	"transched/internal/paperdata"
	"transched/internal/testutil"
)

// TestTable2BestCommonOrder reproduces paper Fig 3a: the best schedule
// that uses a common order on both resources for the Table 2 instance
// (capacity 10) has makespan 23.
func TestTable2BestCommonOrder(t *testing.T) {
	in := paperdata.Table2()
	_, best := BestPermutationLimited(in.Tasks, in.Capacity)
	if math.Abs(best-paperdata.Table2BestCommonMakespan) > 1e-9 {
		t.Errorf("best common-order makespan = %g, want %g", best, paperdata.Table2BestCommonMakespan)
	}
}

// TestTable2DifferentOrderBeatsCommon reproduces paper Prop 1 / Fig 3b:
// a feasible schedule ordering the resources differently achieves
// makespan 22 < 23.
func TestTable2DifferentOrderBeatsCommon(t *testing.T) {
	s := paperdata.Table2DifferentOrderSchedule()
	if err := s.Validate(); err != nil {
		t.Fatalf("paper Fig 3b schedule invalid: %v", err)
	}
	if got := s.Makespan(); math.Abs(got-paperdata.Table2DifferentOrderMakespan) > 1e-9 {
		t.Fatalf("Fig 3b makespan = %g, want %g", got, paperdata.Table2DifferentOrderMakespan)
	}
	if s.Permutation() {
		t.Error("Fig 3b schedule should order resources differently")
	}
	if s.Makespan() >= paperdata.Table2BestCommonMakespan {
		t.Error("different-order schedule should beat the best common order")
	}
}

func TestScheduleOrderLimitedProducesValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		in := testutil.RandomInstance(rng, 1+rng.Intn(7), 10)
		order := rng.Perm(in.N())
		s, ok := ScheduleOrderLimited(in.Tasks, order, in.Capacity)
		if !ok {
			t.Fatalf("trial %d: schedule reported impossible for capacity >= mc", trial)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
		if !s.Permutation() {
			t.Fatalf("trial %d: static executor must be order-preserving", trial)
		}
	}
}

func TestScheduleOrderLimitedRejectsOversizeTask(t *testing.T) {
	in := paperdata.Table3()
	if _, ok := ScheduleOrderLimited(in.Tasks, []int{0, 1, 2, 3}, 2); ok {
		t.Error("task with Mem > capacity should be unschedulable")
	}
}

// TestLimitedAtLeastUnlimited: with the memory constraint active, the best
// common-order makespan can only get worse as capacity shrinks.
func TestLimitedMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		tasks := testutil.RandomTasks(rng, 1+rng.Intn(5), 10)
		mc := 0.0
		for _, task := range tasks {
			if task.Mem > mc {
				mc = task.Mem
			}
		}
		if mc == 0 {
			continue
		}
		_, tight := BestPermutationLimited(tasks, mc)
		_, loose := BestPermutationLimited(tasks, 2*mc)
		_, unlimited := BestPermutationUnlimited(tasks)
		if tight < loose-1e-9 || loose < unlimited-1e-9 {
			t.Fatalf("trial %d: makespans not monotone: mc=%g 2mc=%g inf=%g",
				trial, tight, loose, unlimited)
		}
	}
}
