package flowshop

import (
	"math"
	"sort"

	"transched/internal/core"
)

// GilmoreGomoryOrder returns a task order computed by the Gilmore–Gomory
// algorithm for the 2-machine no-wait flowshop (paper §4.4, reference
// [24]). In the paper's mapping, a task's transfer time is its processing
// time on the first machine and its computation time on the second; the
// "state change" cost between adjacent tasks is the non-overlapped time.
//
// For a no-wait flowshop, scheduling tasks in sequence σ gives makespan
//
//	Σ_i CM_i + Σ_{j→k consecutive} max(0, CP_j − CM_k) + CP_last,
//
// so appending a dummy task with zero durations turns the problem into a
// travelling-salesman tour with the one-state-variable cost
// c(j→k) = max(0, CP_j − CM_k), which Gilmore and Gomory solve exactly:
//
//  1. match the sorted computation times against the sorted communication
//     times (the optimal assignment for this Monge-type cost);
//  2. decompose the assignment into cycles;
//  3. patch cycles into one tour using minimum-cost interchanges of
//     adjacent sorted positions, selected greedily (Kruskal) — the
//     interchange at position p costs
//     max(0, min(β_{p+1}, α_{p+1}) − max(β_p, α_p))
//     where α/β are the sorted communication/computation times.
//
// Applying the selected interchanges in the right order realises the
// matching-plus-interchange cost; this implementation searches the
// application orders within each maximal chain of adjacent interchanges
// (chains are independent) and keeps the cheapest realisation, falling
// back to directional sweeps for chains longer than maxChainSearch.
//
// The resulting sequence ignores memory limits by construction; the GG
// heuristic then executes it under the capacity like any static order.
func GilmoreGomoryOrder(tasks []core.Task) []int {
	n := len(tasks)
	if n <= 1 {
		return identity(n)
	}
	// City 0 is the dummy task (0,0); cities 1..n are the real tasks.
	alpha := make([]float64, n+1) // "in" values: communication times
	beta := make([]float64, n+1)  // "out" values: computation times
	for i, t := range tasks {
		alpha[i+1] = t.Comm
		beta[i+1] = t.Comp
	}

	// Sort positions: aOrder[p] is the city with the p-th smallest alpha,
	// bOrder[p] the city with the p-th smallest beta.
	aOrder := sortedCities(alpha)
	bOrder := sortedCities(beta)

	// Optimal assignment: successor(bOrder[p]) = aOrder[p].
	succ := make([]int, n+1)
	for p := 0; p <= n; p++ {
		succ[bOrder[p]] = aOrder[p]
	}

	// Cycle decomposition of the successor permutation.
	cycleOf := cycles(succ)
	nCycles := 0
	for _, c := range cycleOf {
		if c+1 > nCycles {
			nCycles = c + 1
		}
	}
	if nCycles > 1 {
		patchCycles(alpha, beta, aOrder, bOrder, succ, cycleOf, nCycles)
	}

	// Read the tour starting from the dummy city 0.
	order := make([]int, 0, n)
	for c := succ[0]; c != 0; c = succ[c] {
		order = append(order, c-1)
	}
	return order
}

// NoWaitMakespan returns the makespan of running the tasks in the given
// order as a 2-machine no-wait flowshop (each computation starts exactly
// when its transfer ends). It is the objective Gilmore–Gomory minimises.
func NoWaitMakespan(tasks []core.Task, order []int) float64 {
	if len(order) == 0 {
		return 0
	}
	sumComm := 0.0
	for _, t := range tasks {
		sumComm += t.Comm
	}
	extra := 0.0
	for j := 0; j+1 < len(order); j++ {
		prev, next := tasks[order[j]], tasks[order[j+1]]
		if d := prev.Comp - next.Comm; d > 0 {
			extra += d
		}
	}
	return sumComm + extra + tasks[order[len(order)-1]].Comp
}

// BestNoWaitPermutation exhaustively minimises NoWaitMakespan; ground truth
// for GilmoreGomoryOrder in tests. Intended for n <= 8.
func BestNoWaitPermutation(tasks []core.Task) ([]int, float64) {
	best := math.Inf(1)
	var bestOrder []int
	permute(identity(len(tasks)), 0, func(p []int) {
		if m := NoWaitMakespan(tasks, p); m < best {
			best = m
			bestOrder = append(bestOrder[:0], p...)
		}
	})
	return bestOrder, best
}

func sortedCities(v []float64) []int {
	order := identity(len(v))
	sort.SliceStable(order, func(i, j int) bool { return v[order[i]] < v[order[j]] })
	return order
}

// cycles labels each city with the index of its cycle in the successor
// permutation.
func cycles(succ []int) []int {
	label := make([]int, len(succ))
	for i := range label {
		label[i] = -1
	}
	next := 0
	for i := range succ {
		if label[i] >= 0 {
			continue
		}
		for j := i; label[j] < 0; j = succ[j] {
			label[j] = next
		}
		next++
	}
	return label
}

// ggCost is the one-state-variable travel cost.
func ggCost(out, in float64) float64 {
	if d := out - in; d > 0 {
		return d
	}
	return 0
}

// interchangeCost is the Gilmore–Gomory cost of swapping the successors
// assigned at sorted positions p and p+1.
func interchangeCost(alpha, beta []float64, aOrder, bOrder []int, p int) float64 {
	lo := math.Max(beta[bOrder[p]], alpha[aOrder[p]])
	hi := math.Min(beta[bOrder[p+1]], alpha[aOrder[p+1]])
	if hi > lo {
		return hi - lo
	}
	return 0
}

// patchCycles merges the assignment's cycles into a single tour. It runs
// Kruskal over the interchange arcs (arc p connects the cycles containing
// sorted positions p and p+1) and then applies each maximal chain of
// selected arcs in the cheapest order it can find.
func patchCycles(alpha, beta []float64, aOrder, bOrder, succ, cycleOf []int, nCycles int) {
	n := len(succ) - 1
	type arc struct {
		p    int
		cost float64
	}
	arcs := make([]arc, 0, n)
	for p := 0; p < n; p++ {
		arcs = append(arcs, arc{p, interchangeCost(alpha, beta, aOrder, bOrder, p)})
	}
	sort.SliceStable(arcs, func(i, j int) bool { return arcs[i].cost < arcs[j].cost })

	parent := identity(nCycles)
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	selected := make([]int, 0, nCycles-1)
	for _, a := range arcs {
		cu, cv := find(cycleOf[bOrder[a.p]]), find(cycleOf[bOrder[a.p+1]])
		if cu != cv {
			parent[cu] = cv
			selected = append(selected, a.p)
			if len(selected) == nCycles-1 {
				break
			}
		}
	}
	sort.Ints(selected)

	// Split into maximal chains of consecutive positions; chains commute
	// with each other, so each is optimised independently.
	for i := 0; i < len(selected); {
		j := i
		for j+1 < len(selected) && selected[j+1] == selected[j]+1 {
			j++
		}
		applyChain(alpha, beta, aOrder, bOrder, succ, selected[i:j+1])
		i = j + 1
	}
}

// maxChainSearch bounds the exhaustive search over application orders of a
// chain of adjacent interchanges (cost grows factorially).
const maxChainSearch = 8

// applyChain applies the interchanges at the given consecutive positions to
// succ, choosing the application order that minimises the realised tour
// cost over the affected positions.
func applyChain(alpha, beta []float64, aOrder, bOrder, succ []int, chain []int) {
	apply := func(order []int) {
		for _, p := range order {
			b1, b2 := bOrder[p], bOrder[p+1]
			succ[b1], succ[b2] = succ[b2], succ[b1]
		}
	}
	if len(chain) == 1 {
		apply(chain)
		return
	}
	// Positions touched by the chain: chain[0] .. chain[last]+1.
	lo, hi := chain[0], chain[len(chain)-1]+1
	costOver := func() float64 {
		c := 0.0
		for p := lo; p <= hi; p++ {
			b := bOrder[p]
			c += ggCost(beta[b], alpha[succ[b]])
		}
		return c
	}
	// Snapshot the successors of the touched positions.
	saved := make([]int, hi-lo+1)
	restore := func() {
		for p := lo; p <= hi; p++ {
			succ[bOrder[p]] = saved[p-lo]
		}
	}
	for p := lo; p <= hi; p++ {
		saved[p-lo] = succ[bOrder[p]]
	}

	var bestOrder []int
	best := math.Inf(1)
	tryOrder := func(order []int) {
		apply(order)
		if c := costOver(); c < best {
			best = c
			bestOrder = append(bestOrder[:0], order...)
		}
		restore()
	}
	if len(chain) <= maxChainSearch {
		work := append([]int(nil), chain...)
		permute(work, 0, func(p []int) { tryOrder(p) })
	} else {
		// Directional sweeps: increasing, decreasing, and the two
		// centre-out variants. GG's construction is realised by one of the
		// monotone sweeps in the common cases; this fallback keeps the
		// heuristic near-optimal on pathological long chains.
		inc := append([]int(nil), chain...)
		dec := reversed(chain)
		tryOrder(inc)
		tryOrder(dec)
		for cut := 1; cut < len(chain); cut++ {
			mix := append(reversed(chain[:cut]), chain[cut:]...)
			tryOrder(mix)
		}
	}
	apply(bestOrder)
}

func reversed(s []int) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
