package flowshop

import (
	"math"

	"transched/internal/core"
)

// BestPermutationUnlimited exhaustively searches all task permutations for
// the minimum makespan with no memory constraint (ground truth for
// Johnson's algorithm in tests). It returns the best order and makespan.
// Intended for n <= 9.
func BestPermutationUnlimited(tasks []core.Task) ([]int, float64) {
	best := math.Inf(1)
	var bestOrder []int
	perm := identity(len(tasks))
	permute(perm, 0, func(p []int) {
		if m := MakespanOrderUnlimited(tasks, p); m < best {
			best = m
			bestOrder = append(bestOrder[:0], p...)
		}
	})
	return bestOrder, best
}

// BestPermutationLimited exhaustively searches all common-order schedules
// (same permutation on both resources) under the memory capacity, using
// the greedy earliest-start executor. This reproduces "the best possible
// schedule when tasks are scheduled in the same order on both resources
// (obtained by exhaustive search)" from paper Prop 1 / Fig 3a.
// Intended for n <= 9.
func BestPermutationLimited(tasks []core.Task, capacity float64) ([]int, float64) {
	best := math.Inf(1)
	var bestOrder []int
	perm := identity(len(tasks))
	permute(perm, 0, func(p []int) {
		if m, ok := makespanOrderLimited(tasks, p, capacity); ok && m < best {
			best = m
			bestOrder = append(bestOrder[:0], p...)
		}
	})
	return bestOrder, best
}

// ScheduleOrderLimited executes a common order on both resources under the
// memory capacity: each task's transfer starts at the earliest time that is
// (a) at or after the link becomes free and (b) at which its memory
// requirement fits, waiting for earlier tasks' computations to release
// memory. Returns false if some task can never fit (Mem > capacity).
func ScheduleOrderLimited(tasks []core.Task, order []int, capacity float64) (*core.Schedule, bool) {
	s := core.NewSchedule(capacity)
	tauComm, tauComp := 0.0, 0.0
	// Resident tasks: memory amount and release time (computation end).
	type resident struct{ release, mem float64 }
	var live []resident
	used := 0.0
	for _, i := range order {
		t := tasks[i]
		if t.Mem > capacity {
			return nil, false
		}
		start := tauComm
		// Release everything that completes by `start`, then keep advancing
		// start to the next release until the task fits.
		for {
			n := live[:0]
			for _, r := range live {
				if r.release <= start+1e-9 {
					used -= r.mem
				} else {
					n = append(n, r)
				}
			}
			live = n
			if used+t.Mem <= capacity+1e-9 {
				break
			}
			// Advance to the earliest pending release.
			next := math.Inf(1)
			for _, r := range live {
				if r.release < next {
					next = r.release
				}
			}
			if math.IsInf(next, 1) {
				return nil, false // cannot ever fit — should not happen when Mem <= capacity
			}
			start = next
		}
		compStart := start + t.Comm
		if tauComp > compStart {
			compStart = tauComp
		}
		s.Append(core.Assignment{Task: t, CommStart: start, CompStart: compStart})
		live = append(live, resident{release: compStart + t.Comp, mem: t.Mem})
		used += t.Mem
		tauComm = start + t.Comm
		tauComp = compStart + t.Comp
	}
	return s, true
}

func makespanOrderLimited(tasks []core.Task, order []int, capacity float64) (float64, bool) {
	s, ok := ScheduleOrderLimited(tasks, order, capacity)
	if !ok {
		return 0, false
	}
	return s.Makespan(), true
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// permute invokes f on every permutation of p[k:] (Heap-style recursion on
// positions; p is reused, f must not retain it).
func permute(p []int, k int, f func([]int)) {
	if k == len(p) {
		f(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, f)
		p[k], p[i] = p[i], p[k]
	}
}
