package flowshop

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"transched/internal/core"
	"transched/internal/paperdata"
	"transched/internal/testutil"
)

func TestJohnsonOrderTable3(t *testing.T) {
	in := paperdata.Table3()
	order := JohnsonOrder(in.Tasks)
	// Compute-intensive sorted by increasing comm: B(1,3), C(4,4);
	// communication-intensive sorted by decreasing comp: A(3,2), D(2,1).
	want := []string{"B", "C", "A", "D"}
	for i, idx := range order {
		if in.Tasks[idx].Name != want[i] {
			t.Fatalf("Johnson order = %v, want %v", names(in.Tasks, order), want)
		}
	}
}

func TestJohnsonOrderTable5(t *testing.T) {
	in := paperdata.Table5()
	order := JohnsonOrder(in.Tasks)
	want := []string{"B", "C", "D", "E", "A"}
	for i, idx := range order {
		if in.Tasks[idx].Name != want[i] {
			t.Fatalf("Johnson order = %v, want %v (paper Fig 6 discussion)", names(in.Tasks, order), want)
		}
	}
}

func names(tasks []core.Task, order []int) []string {
	out := make([]string, len(order))
	for i, idx := range order {
		out[i] = tasks[idx].Name
	}
	return out
}

func TestOMIMTable3(t *testing.T) {
	in := paperdata.Table3()
	if got := OMIM(in.Tasks); got != paperdata.Table3Makespans["OMIM"] {
		t.Errorf("OMIM = %g, want %g (paper Fig 4a)", got, paperdata.Table3Makespans["OMIM"])
	}
}

func TestScheduleOrderUnlimitedFig4a(t *testing.T) {
	in := paperdata.Table3()
	s := ScheduleOrderUnlimited(in.Tasks, JohnsonOrder(in.Tasks))
	if err := s.Validate(); err != nil {
		t.Fatalf("Johnson schedule invalid: %v", err)
	}
	// Fig 4a: comm B[0,1) C[1,5) A[5,8) D[8,10); comp B[1,4) C[5,9) A[9,11) D[11,12).
	wantComm := map[string]float64{"B": 0, "C": 1, "A": 5, "D": 8}
	wantComp := map[string]float64{"B": 1, "C": 5, "A": 9, "D": 11}
	for _, a := range s.Assignments {
		if a.CommStart != wantComm[a.Task.Name] || a.CompStart != wantComp[a.Task.Name] {
			t.Errorf("task %s: comm %g comp %g, want comm %g comp %g",
				a.Task.Name, a.CommStart, a.CompStart, wantComm[a.Task.Name], wantComp[a.Task.Name])
		}
	}
}

// TestJohnsonOptimal checks Theorem 1: Johnson's makespan equals the
// brute-force optimum over all permutations with unlimited memory.
func TestJohnsonOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		tasks := testutil.RandomTasks(rng, n, 10)
		_, best := BestPermutationUnlimited(tasks)
		if got := OMIM(tasks); math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: Johnson = %g, brute force = %g, tasks %v", trial, got, best, tasks)
		}
	}
}

// TestJohnsonOptimalQuick re-checks Theorem 1 through testing/quick's
// generator machinery on integer-valued tasks.
func TestJohnsonOptimalQuick(t *testing.T) {
	f := func(pairs [6][2]uint8) bool {
		tasks := make([]core.Task, 0, 6)
		for i, p := range pairs {
			tasks = append(tasks, core.NewTask(string(rune('A'+i)), float64(p[0]%20), float64(p[1]%20)))
		}
		_, best := BestPermutationUnlimited(tasks)
		return math.Abs(OMIM(tasks)-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSwapLemma verifies Lemma 1: whenever a condition holds for adjacent
// tasks A, B, swapping them does not improve the makespan, for arbitrary
// prefixes of other tasks.
func TestSwapLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(4)
		tasks := testutil.RandomTasks(rng, n, 10)
		pos := rng.Intn(n - 1)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		a, b := tasks[order[pos]], tasks[order[pos+1]]
		if !SwapDoesNotImprove(a, b) {
			continue
		}
		orig := MakespanOrderUnlimited(tasks, order)
		order[pos], order[pos+1] = order[pos+1], order[pos]
		swapped := MakespanOrderUnlimited(tasks, order)
		if swapped < orig-1e-9 {
			t.Fatalf("trial %d: swap improved makespan %g -> %g for A=%v B=%v",
				trial, orig, swapped, a, b)
		}
	}
}

func TestSwapLemmaConditions(t *testing.T) {
	// One witness per condition of Lemma 1.
	caseI := SwapDoesNotImprove(core.NewTask("A", 1, 2), core.NewTask("B", 3, 4))
	caseII := SwapDoesNotImprove(core.NewTask("A", 5, 4), core.NewTask("B", 6, 2))
	caseIII := SwapDoesNotImprove(core.NewTask("A", 1, 2), core.NewTask("B", 6, 2))
	if !caseI || !caseII || !caseIII {
		t.Errorf("lemma conditions = %v %v %v, want all true", caseI, caseII, caseIII)
	}
	// A communication-intensive before compute-intensive pair matches no
	// condition (the reverse of condition iii).
	if SwapDoesNotImprove(core.NewTask("A", 6, 2), core.NewTask("B", 1, 2)) {
		t.Error("reverse of condition iii should not be covered")
	}
}

func TestMakespanOrderUnlimitedMatchesSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		tasks := testutil.RandomTasks(rng, 1+rng.Intn(7), 5)
		order := rng.Perm(len(tasks))
		fast := MakespanOrderUnlimited(tasks, order)
		full := ScheduleOrderUnlimited(tasks, order).Makespan()
		if math.Abs(fast-full) > 1e-9 {
			t.Fatalf("fast makespan %g != schedule makespan %g", fast, full)
		}
	}
}

func TestOMIMIsLowerBoundForLimitedSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		in := testutil.RandomInstance(rng, 1+rng.Intn(6), 10)
		omim := OMIM(in.Tasks)
		_, best := BestPermutationLimited(in.Tasks, in.Capacity)
		if best < omim-1e-9 {
			t.Fatalf("limited-memory optimum %g below OMIM %g", best, omim)
		}
	}
}
