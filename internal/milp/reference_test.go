package milp

// The pre-warm-start branch and bound, kept verbatim as a differential
// reference (the same discipline as PR 5's simulation kernel rewrite:
// the old implementation stays in the test tree and the new one must
// agree with it). It solves every node's relaxation from scratch with
// the reference two-phase tableau (lp.Solve), including the historical
// double solve per node — nodes were solved at creation and again at
// pop. differential_test.go pins the rewritten solver to identical
// statuses and objectives, and asserts the node-count and
// simplex-iteration drops the rewrite exists to deliver.

import (
	"container/heap"
	"fmt"
	"math"

	"transched/internal/lp"
)

type refNode struct {
	lower, upper []float64
	bound        float64
	index        int // heap bookkeeping
}

type refQueue []*refNode

func (q refQueue) Len() int            { return len(q) }
func (q refQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q refQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *refQueue) Push(x interface{}) { n := x.(*refNode); n.index = len(*q); *q = append(*q, n) }
func (q *refQueue) Pop() interface{} {
	old := *q
	n := old[len(old)-1]
	*q = old[:len(old)-1]
	return n
}

// referenceSolve is the seed-era milp.Solve, byte-for-byte except for
// renamed node types and the added simplex-iteration accounting used by
// the differential suite.
func referenceSolve(p *Problem, opts Options) (*Solution, error) {
	n := p.LP.NumVars
	for _, j := range p.Integer {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("milp: integer variable %d out of range", j)
		}
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}

	baseLower := make([]float64, n)
	baseUpper := make([]float64, n)
	for j := 0; j < n; j++ {
		if p.LP.Lower != nil {
			baseLower[j] = p.LP.Lower[j]
		}
		if p.LP.Upper != nil {
			baseUpper[j] = p.LP.Upper[j]
		} else {
			baseUpper[j] = math.Inf(1)
		}
	}

	best := math.Inf(1)
	if opts.IncumbentSet {
		best = opts.IncumbentObjective
	}
	var bestX []float64

	iters := 0
	relax := func(lo, hi []float64) (*lp.Solution, error) {
		q := p.LP // shallow copy; bounds replaced
		q.Lower = lo
		q.Upper = hi
		s, err := lp.Solve(&q)
		if s != nil {
			iters += s.Iters
		}
		return s, err
	}

	root := &refNode{lower: baseLower, upper: baseUpper}
	sol, err := relax(root.lower, root.upper)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Unbounded:
		return &Solution{Status: Unbounded}, nil
	case lp.Infeasible:
		return &Solution{Status: Infeasible}, nil
	case lp.IterLimit:
		return nil, fmt.Errorf("milp: simplex iteration limit at root")
	}
	root.bound = sol.Objective
	rootX := sol.X

	queue := &refQueue{}
	heap.Init(queue)
	pushNode := func(nd *refNode) { heap.Push(queue, nd) }

	// Check the root before branching.
	if j := mostFractional(rootX, p.Integer); j < 0 {
		if sol.Objective < best-intEps {
			return &Solution{Status: Optimal, Objective: sol.Objective, X: rootX, Nodes: 1, Bound: sol.Objective, SimplexIters: iters}, nil
		}
		// The root is integral but no better than the seeded incumbent.
		return &Solution{Status: Infeasible, Objective: best, Nodes: 1, Bound: sol.Objective, SimplexIters: iters}, nil
	}
	pushNode(root)

	nodes := 1
	provenBound := root.bound
	for queue.Len() > 0 && nodes < maxNodes {
		nd := heap.Pop(queue).(*refNode)
		provenBound = nd.bound
		if !(nd.bound < best-intEps) {
			// Best-first: every remaining node is at least as bad.
			provenBound = nd.bound
			queue = &refQueue{}
			break
		}
		if opts.Gap > 0 && best < math.Inf(1) && (best-nd.bound) <= opts.Gap*math.Abs(best) {
			break
		}
		// Re-solve to get the fractional solution for branching (bounds
		// were computed when the node was created; solving again keeps
		// node memory small: two bound slices instead of a full X).
		sol, err := relax(nd.lower, nd.upper)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			continue
		}
		j := mostFractional(sol.X, p.Integer)
		if j < 0 { // integer feasible
			if sol.Objective < best-intEps {
				best = sol.Objective
				bestX = sol.X
			}
			continue
		}
		floor := math.Floor(sol.X[j])
		for side := 0; side < 2; side++ {
			lo := append([]float64(nil), nd.lower...)
			hi := append([]float64(nil), nd.upper...)
			if side == 0 {
				hi[j] = floor
			} else {
				lo[j] = floor + 1
			}
			if lo[j] > hi[j]+intEps {
				continue
			}
			child, err := relax(lo, hi)
			if err != nil {
				return nil, err
			}
			nodes++
			if child.Status != lp.Optimal {
				continue
			}
			if !(child.Objective < best-intEps) {
				continue
			}
			if jj := mostFractional(child.X, p.Integer); jj < 0 {
				if child.Objective < best-intEps {
					best = child.Objective
					bestX = child.X
				}
				continue
			}
			pushNode(&refNode{lower: lo, upper: hi, bound: child.Objective})
		}
	}

	switch {
	case bestX == nil && !opts.IncumbentSet:
		return &Solution{Status: Infeasible, Nodes: nodes, Bound: provenBound, SimplexIters: iters}, nil
	case bestX == nil:
		// Nothing better than the seeded incumbent was found.
		return &Solution{Status: Infeasible, Objective: best, Nodes: nodes, Bound: provenBound, SimplexIters: iters}, nil
	case queue.Len() == 0:
		return &Solution{Status: Optimal, Objective: best, X: bestX, Nodes: nodes, Bound: best, SimplexIters: iters}, nil
	default:
		return &Solution{Status: Feasible, Objective: best, X: bestX, Nodes: nodes, Bound: provenBound, SimplexIters: iters}, nil
	}
}
