package milp

import (
	"math"
	"math/rand"
	"testing"

	"transched/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// maximize 10a + 6b + 4c s.t. a+b+c <= 2, a,b,c binary
	// => minimize the negation; optimum a=b=1 => -16.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-10, -6, -4},
			Upper:     []float64{1, 1, 1},
		},
		Integer: []int{0, 1, 2},
	}
	p.LP.AddRow(lp.LE, 2, "cap", lp.Entry{Var: 0, Val: 1}, lp.Entry{Var: 1, Val: 1}, lp.Entry{Var: 2, Val: 1})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective+16) > 1e-6 {
		t.Fatalf("status %v obj %g, want optimal -16", s.Status, s.Objective)
	}
	if math.Abs(s.X[0]-1) > 1e-6 || math.Abs(s.X[1]-1) > 1e-6 || math.Abs(s.X[2]) > 1e-6 {
		t.Errorf("x = %v, want [1 1 0]", s.X)
	}
}

func TestFractionalKnapsackNeedsBranching(t *testing.T) {
	// maximize 5a + 4b s.t. 3a + 2b <= 4, binaries: LP relax picks
	// fractional a; integer optimum is b=1, a=0? value 4 vs a=1: 3a=3<=4
	// value 5. So optimum a=1, b fractional? b must be integer: a=1 uses 3,
	// remaining 1 < 2 so b=0: value 5. => min -5.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-5, -4},
			Upper:     []float64{1, 1},
		},
		Integer: []int{0, 1},
	}
	p.LP.AddRow(lp.LE, 4, "cap", lp.Entry{Var: 0, Val: 3}, lp.Entry{Var: 1, Val: 2})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective+5) > 1e-6 {
		t.Fatalf("status %v obj %g, want optimal -5", s.Status, s.Objective)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 0.4 <= x <= 0.6, x integer: infeasible.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Lower:     []float64{0.4},
			Upper:     []float64{0.6},
		},
		Integer: []int{0},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 1, Objective: []float64{1}}}
	p.LP.AddRow(lp.GE, 5, "a", lp.Entry{Var: 0, Val: 1})
	p.LP.AddRow(lp.LE, 1, "b", lp.Entry{Var: 0, Val: 1})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnboundedRelaxation(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 1, Objective: []float64{-1}}, Integer: []int{0}}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestIncumbentCutoff(t *testing.T) {
	// Optimum is -16 (TestKnapsack); an incumbent of -20 prunes everything.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-10, -6, -4},
			Upper:     []float64{1, 1, 1},
		},
		Integer: []int{0, 1, 2},
	}
	p.LP.AddRow(lp.LE, 2, "cap", lp.Entry{Var: 0, Val: 1}, lp.Entry{Var: 1, Val: 1}, lp.Entry{Var: 2, Val: 1})
	s, err := Solve(p, Options{IncumbentObjective: -20, IncumbentSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible (nothing beats the incumbent)", s.Status)
	}
	// An incumbent of -10 is beaten by the true optimum.
	s, err = Solve(p, Options{IncumbentObjective: -10, IncumbentSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective+16) > 1e-6 {
		t.Fatalf("status %v obj %g, want optimal -16", s.Status, s.Objective)
	}
}

func TestBadIntegerIndex(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 1}, Integer: []int{3}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("want error for out-of-range integer index")
	}
}

func TestAlreadyIntegerRoot(t *testing.T) {
	// Relaxation optimum is integral: no branching needed.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Lower:     []float64{2},
			Upper:     []float64{9},
		},
		Integer: []int{0},
	}
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Nodes != 1 || math.Abs(s.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj %g nodes %d, want optimal 2 in 1 node", s.Status, s.Objective, s.Nodes)
	}
}

// bruteForceMILP enumerates all integer assignments in [0,ub] for the
// integer vars of a pure integer problem (all vars integer) and returns
// the best objective over feasible points.
func bruteForceMILP(c []float64, rows []lp.Row, ub int, n int) (float64, bool) {
	best := math.Inf(1)
	found := false
	x := make([]float64, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			for _, r := range rows {
				dot := 0.0
				for _, e := range r.Coef {
					dot += e.Val * x[e.Var]
				}
				switch r.Sense {
				case lp.LE:
					if dot > r.RHS+1e-9 {
						return
					}
				case lp.GE:
					if dot < r.RHS-1e-9 {
						return
					}
				case lp.EQ:
					if math.Abs(dot-r.RHS) > 1e-9 {
						return
					}
				}
			}
			v := 0.0
			for j := range c {
				v += c[j] * x[j]
			}
			if v < best {
				best = v
			}
			found = true
			return
		}
		for v := 0; v <= ub; v++ {
			x[j] = float64(v)
			rec(j + 1)
		}
	}
	rec(0)
	return best, found
}

// TestRandomMILPsAgainstEnumeration cross-checks branch and bound against
// exhaustive enumeration of bounded integer programs.
func TestRandomMILPsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		const ub = 3
		p := &Problem{
			LP: lp.Problem{
				NumVars:   n,
				Objective: make([]float64, n),
				Upper:     make([]float64, n),
			},
		}
		for j := 0; j < n; j++ {
			p.LP.Objective[j] = math.Floor(rng.Float64()*11) - 5
			p.LP.Upper[j] = ub
			p.Integer = append(p.Integer, j)
		}
		for i := 0; i < m; i++ {
			entries := make([]lp.Entry, 0, n)
			for j := 0; j < n; j++ {
				v := math.Floor(rng.Float64()*7) - 3
				if v != 0 {
					entries = append(entries, lp.Entry{Var: j, Val: v})
				}
			}
			sense := lp.Sense(rng.Intn(2)) // LE or EQ
			rhs := math.Floor(rng.Float64()*12) - 2
			p.LP.AddRow(sense, rhs, "r", entries...)
		}
		want, feasible := bruteForceMILP(p.LP.Objective, p.LP.Rows, ub, n)
		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !feasible {
			if got.Status != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v obj %g", trial, got.Status, got.Objective)
			}
			continue
		}
		if got.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (%g)", trial, got.Status, want)
		}
		if math.Abs(got.Objective-want) > 1e-5 {
			t.Fatalf("trial %d: objective %g, want %g (problem %+v)", trial, got.Objective, want, p.LP)
		}
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible",
		Unbounded: "unbounded", Status(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d) = %q, want %q", int(s), got, want)
		}
	}
}
