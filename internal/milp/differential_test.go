package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"transched/internal/lp"
)

// randomGeneralMILP mirrors the enumeration test's generator: small
// bounded integer programs with LE/EQ rows and signed coefficients.
func randomGeneralMILP(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(4)
	m := 1 + rng.Intn(4)
	const ub = 3
	p := &Problem{
		LP: lp.Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Upper:     make([]float64, n),
		},
	}
	for j := 0; j < n; j++ {
		p.LP.Objective[j] = math.Floor(rng.Float64()*11) - 5
		p.LP.Upper[j] = ub
		p.Integer = append(p.Integer, j)
	}
	for i := 0; i < m; i++ {
		entries := make([]lp.Entry, 0, n)
		for j := 0; j < n; j++ {
			v := math.Floor(rng.Float64()*7) - 3
			if v != 0 {
				entries = append(entries, lp.Entry{Var: j, Val: v})
			}
		}
		sense := lp.Sense(rng.Intn(2)) // LE or EQ
		rhs := math.Floor(rng.Float64()*12) - 2
		p.LP.AddRow(sense, rhs, "r", entries...)
	}
	return p
}

// TestMILPDifferentialAgainstReference pins the warm-started parallel
// solver to the preserved seed-era solver on exact (uncapped) runs:
// identical statuses, objectives to 1e-9 (scaled), and — the point of
// the rewrite — strictly fewer nodes and simplex iterations in
// aggregate across the corpus.
func TestMILPDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	type cases struct {
		p    *Problem
		opts Options
	}
	var corpus []cases
	for i := 0; i < 12; i++ {
		corpus = append(corpus, cases{knapsackProblem(rng, 10+i), Options{}})
	}
	for i := 0; i < 60; i++ {
		corpus = append(corpus, cases{randomGeneralMILP(rng), Options{}})
	}
	// Seeded-incumbent variants exercise the cutoff paths.
	for i := 0; i < 8; i++ {
		p := knapsackProblem(rng, 12)
		corpus = append(corpus, cases{p, Options{IncumbentSet: true, IncumbentObjective: -5 * float64(i+1)}})
	}

	refNodes, refIters := 0, 0
	newNodes, newIters := 0, 0
	for i, c := range corpus {
		want, err := referenceSolve(c.p, c.opts)
		if err != nil {
			t.Fatalf("case %d: reference: %v", i, err)
		}
		got, err := Solve(c.p, c.opts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Status != want.Status {
			t.Fatalf("case %d: status %v, reference %v", i, got.Status, want.Status)
		}
		if want.Status == Optimal || want.Status == Feasible {
			tol := 1e-9 * (1 + math.Abs(want.Objective))
			if math.Abs(got.Objective-want.Objective) > tol {
				t.Fatalf("case %d: objective %.12g, reference %.12g", i, got.Objective, want.Objective)
			}
			// The incumbent must be integer feasible on its own terms.
			for _, j := range c.p.Integer {
				f := got.X[j] - math.Floor(got.X[j])
				if f > intEps && f < 1-intEps {
					t.Fatalf("case %d: fractional x[%d]=%g", i, j, got.X[j])
				}
			}
		}
		refNodes += want.Nodes
		refIters += want.SimplexIters
		newNodes += got.Nodes
		newIters += got.SimplexIters
	}
	t.Logf("nodes: reference %d, warm %d (%.2fx); simplex iters: reference %d, warm %d (%.2fx)",
		refNodes, newNodes, float64(refNodes)/float64(newNodes),
		refIters, newIters, float64(refIters)/float64(newIters))
	if newNodes >= refNodes {
		t.Fatalf("node count did not drop: reference %d, warm %d", refNodes, newNodes)
	}
	if newIters*2 >= refIters {
		t.Fatalf("simplex iterations did not drop by at least 2x: reference %d, warm %d", refIters, newIters)
	}
}

// TestMILPWorkersDeterminism pins the parallel contract: solutions,
// node counts, simplex iteration counts and every solution bit are
// identical at workers 1, 2 and 8.
func TestMILPWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	var corpus []*Problem
	for i := 0; i < 4; i++ {
		corpus = append(corpus, knapsackProblem(rng, 13+i))
	}
	for i := 0; i < 20; i++ {
		corpus = append(corpus, randomGeneralMILP(rng))
	}
	for i, p := range corpus {
		base, err := Solve(p, Options{Workers: 1})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for _, workers := range []int{2, 8} {
			got, err := Solve(p, Options{Workers: workers})
			if err != nil {
				t.Fatalf("case %d workers %d: %v", i, workers, err)
			}
			if got.Status != base.Status || got.Nodes != base.Nodes || got.SimplexIters != base.SimplexIters {
				t.Fatalf("case %d workers %d: (%v, %d nodes, %d iters) vs serial (%v, %d, %d)",
					i, workers, got.Status, got.Nodes, got.SimplexIters, base.Status, base.Nodes, base.SimplexIters)
			}
			if math.Float64bits(got.Objective) != math.Float64bits(base.Objective) ||
				math.Float64bits(got.Bound) != math.Float64bits(base.Bound) {
				t.Fatalf("case %d workers %d: objective/bound bits differ", i, workers)
			}
			if len(got.X) != len(base.X) {
				t.Fatalf("case %d workers %d: X length differs", i, workers)
			}
			for j := range got.X {
				if math.Float64bits(got.X[j]) != math.Float64bits(base.X[j]) {
					t.Fatalf("case %d workers %d: X[%d] bits differ: %v vs %v",
						i, workers, j, got.X[j], base.X[j])
				}
			}
		}
	}
}

// TestDeadlineRequiresClock pins the detclock contract: a deadline
// without a caller-supplied clock is an error, not a silent wall read.
func TestDeadlineRequiresClock(t *testing.T) {
	p := knapsackProblem(rand.New(rand.NewSource(1)), 8)
	if _, err := Solve(p, Options{Deadline: time.Unix(1, 0)}); err == nil {
		t.Fatal("Deadline without Clock accepted")
	}
}

// roundingProofProblem is a feasible MILP whose root relaxation is
// fractional and whose rounded points all violate the equality row, so
// no incumbent can exist before the first branch: min -3x -2y over
// integers x,y in [0,4] with 2x + 4y = 6 and x <= 2.5. The optimum is
// (1,1) at -5; the root vertex is (2.5, 0.25).
func roundingProofProblem() *Problem {
	p := &Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-3, -2},
			Upper:     []float64{2.5, 4},
		},
		Integer: []int{0, 1},
	}
	p.LP.AddRow(lp.EQ, 6, "eq", lp.Entry{Var: 0, Val: 2}, lp.Entry{Var: 1, Val: 4})
	return p
}

// TestDeadlineExpiry drives the solver on a synthetic clock that jumps
// a fixed step per reading, so expiry behaviour is fully replayable.
func TestDeadlineExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	t0 := time.Unix(1000, 0)

	// Already expired, nothing seeded, and the root admits no rounded
	// incumbent: Expired with a bound from the root.
	p := roundingProofProblem()
	now := t0
	clock := func() time.Time { now = now.Add(time.Hour); return now }
	s, err := Solve(p, Options{Deadline: t0, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Expired {
		t.Fatalf("status %v, want expired", s.Status)
	}
	if s.X != nil || math.IsInf(s.Bound, 0) {
		t.Fatalf("expired solution carries X=%v bound=%g", s.X, s.Bound)
	}

	// Already expired with a seeded incumbent: Expired still reports it.
	s, err = Solve(p, Options{Deadline: t0, Clock: clock, IncumbentSet: true, IncumbentObjective: -3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Expired || s.Objective != -3 {
		t.Fatalf("seeded expiry: %v obj %g", s.Status, s.Objective)
	}

	// On a knapsack the root rounding heuristic finds an incumbent, so
	// expiry after the root must come back Feasible, never Expired and
	// never an unproven Optimal.
	kp := knapsackProblem(rng, 16)
	s, err = Solve(kp, Options{Deadline: t0, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Feasible {
		t.Fatalf("knapsack expiry status %v, want feasible", s.Status)
	}
	if s.Bound > s.Objective+1e-9 {
		t.Fatalf("knapsack expiry: bound %g above incumbent %g", s.Bound, s.Objective)
	}

	// A few rounds of budget: any incumbent found must come back Feasible
	// with a consistent bound; otherwise Expired. Never an unproven
	// Optimal/Infeasible claim.
	sawFeasible := false
	for trial := 0; trial < 30; trial++ {
		p := knapsackProblem(rng, 18)
		now := t0
		tick := func() time.Time { now = now.Add(time.Second); return now }
		s, err := Solve(p, Options{Deadline: t0.Add(3500 * time.Millisecond), Clock: tick})
		if err != nil {
			t.Fatal(err)
		}
		switch s.Status {
		case Feasible:
			sawFeasible = true
			if s.Bound > s.Objective+1e-9 {
				t.Fatalf("trial %d: bound %g above incumbent %g", trial, s.Bound, s.Objective)
			}
			for _, j := range p.Integer {
				if f := s.X[j] - math.Floor(s.X[j]); f > intEps && f < 1-intEps {
					t.Fatalf("trial %d: fractional incumbent x[%d]=%g", trial, j, s.X[j])
				}
			}
		case Expired, Optimal, Infeasible:
			// Optimal/Infeasible can legitimately finish inside the budget
			// on easy draws; Expired when no incumbent surfaced in time.
		default:
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
	}
	if !sawFeasible {
		t.Log("deadline never caught an incumbent mid-search — acceptable but unexpected")
	}
}

// TestContextCancellation: a cancelled context stops the search like an
// expired deadline — Expired when no incumbent exists, Feasible when
// the root rounding already produced one.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := Solve(roundingProofProblem(), Options{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Expired {
		t.Fatalf("status %v, want expired", s.Status)
	}
	s, err = Solve(knapsackProblem(rand.New(rand.NewSource(3)), 16), Options{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Feasible {
		t.Fatalf("status %v, want feasible (rounded incumbent)", s.Status)
	}
}

// TestRootBasisReuse: re-solving with the previous run's root basis must
// return bit-identical results while spending no more simplex pivots.
func TestRootBasisReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p := knapsackProblem(rng, 14)
		first, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if first.RootBasis == nil {
			t.Fatalf("trial %d: no root basis exported", trial)
		}
		again, err := Solve(p, Options{RootBasis: first.RootBasis})
		if err != nil {
			t.Fatal(err)
		}
		if again.Status != first.Status || again.Nodes != first.Nodes ||
			math.Float64bits(again.Objective) != math.Float64bits(first.Objective) {
			t.Fatalf("trial %d: basis-seeded run diverged: (%v,%d,%g) vs (%v,%d,%g)",
				trial, again.Status, again.Nodes, again.Objective,
				first.Status, first.Nodes, first.Objective)
		}
		if again.SimplexIters > first.SimplexIters {
			t.Fatalf("trial %d: warm root spent more pivots (%d) than cold (%d)",
				trial, again.SimplexIters, first.SimplexIters)
		}
	}
}

// TestKnownLowerBoundStopsEarly: with the true optimum supplied as an
// external lower bound, the search may stop the moment the incumbent
// reaches it — with the same objective and no more nodes than the
// exact run.
func TestKnownLowerBoundStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		p := knapsackProblem(rng, 14)
		exact, err := Solve(p, Options{})
		if err != nil || exact.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, err, exact)
		}
		seeded, err := Solve(p, Options{KnownLowerBound: exact.Objective, KnownLowerBoundSet: true})
		if err != nil {
			t.Fatal(err)
		}
		if seeded.Status != Optimal {
			t.Fatalf("trial %d: status %v with exact lower bound", trial, seeded.Status)
		}
		if math.Abs(seeded.Objective-exact.Objective) > 1e-9*(1+math.Abs(exact.Objective)) {
			t.Fatalf("trial %d: objective %g, exact %g", trial, seeded.Objective, exact.Objective)
		}
		if seeded.Nodes > exact.Nodes {
			t.Fatalf("trial %d: bound-seeded run explored more nodes (%d) than exact (%d)",
				trial, seeded.Nodes, exact.Nodes)
		}
	}
}

// BenchmarkMILPWarmStart measures the rewritten solver on a
// window-scale knapsack; BenchmarkMILPReference is the preserved
// seed-era solver on the same instance — the ratio is the headline
// number scripts/bench.sh records into BENCH_MILP.json.
func BenchmarkMILPWarmStart(b *testing.B) {
	p := knapsackProblem(rand.New(rand.NewSource(229)), 16)
	b.ReportAllocs()
	b.ResetTimer()
	nodes, itersTotal := 0, 0
	for i := 0; i < b.N; i++ {
		s, err := Solve(p, Options{})
		if err != nil || s.Status != Optimal {
			b.Fatalf("%v %v", err, s.Status)
		}
		nodes += s.Nodes
		itersTotal += s.SimplexIters
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
	b.ReportMetric(float64(itersTotal)/float64(nodes), "iters/node")
}

func BenchmarkMILPReference(b *testing.B) {
	p := knapsackProblem(rand.New(rand.NewSource(229)), 16)
	b.ReportAllocs()
	b.ResetTimer()
	nodes := 0
	for i := 0; i < b.N; i++ {
		s, err := referenceSolve(p, Options{})
		if err != nil || s.Status != Optimal {
			b.Fatalf("%v %v", err, s.Status)
		}
		nodes += s.Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
}
