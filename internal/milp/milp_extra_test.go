package milp

import (
	"math"
	"math/rand"
	"testing"

	"transched/internal/lp"
)

// knapsackProblem builds a random 0/1 knapsack MILP (minimising negated
// value) with n items.
func knapsackProblem(rng *rand.Rand, n int) *Problem {
	p := &Problem{
		LP: lp.Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Upper:     make([]float64, n),
		},
	}
	entries := make([]lp.Entry, n)
	for j := 0; j < n; j++ {
		p.LP.Objective[j] = -(1 + math.Floor(rng.Float64()*20))
		p.LP.Upper[j] = 1
		p.Integer = append(p.Integer, j)
		entries[j] = lp.Entry{Var: j, Val: 1 + math.Floor(rng.Float64()*10)}
	}
	cap := 0.0
	for _, e := range entries {
		cap += e.Val
	}
	p.LP.AddRow(lp.LE, math.Floor(cap/2), "cap", entries...)
	return p
}

// TestGapTermination: with a loose relative gap, the solver may stop
// early but must return a feasible solution within the gap of the bound.
func TestGapTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		p := knapsackProblem(rng, 12)
		exact, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if exact.Status != Optimal {
			t.Fatalf("trial %d: exact status %v", trial, exact.Status)
		}
		gapped, err := Solve(p, Options{Gap: 0.10})
		if err != nil {
			t.Fatal(err)
		}
		if gapped.Status != Optimal && gapped.Status != Feasible {
			t.Fatalf("trial %d: gapped status %v", trial, gapped.Status)
		}
		// Within 10% of the true optimum (both negative values).
		if gapped.Objective > exact.Objective*(1-0.10)+1e-9 {
			t.Fatalf("trial %d: gapped %g vs exact %g exceeds 10%%",
				trial, gapped.Objective, exact.Objective)
		}
	}
}

// TestNodeLimitReturnsFeasible: a tiny node budget on a nontrivial
// problem yields Feasible (an incumbent without proof) or Optimal, never
// silently wrong.
func TestNodeLimitReturnsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	sawFeasible := false
	for trial := 0; trial < 50; trial++ {
		p := knapsackProblem(rng, 16)
		s, err := Solve(p, Options{MaxNodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		switch s.Status {
		case Feasible:
			sawFeasible = true
			if s.Bound > s.Objective+1e-9 {
				t.Fatalf("trial %d: bound %g above incumbent %g", trial, s.Bound, s.Objective)
			}
			// The incumbent must be integer feasible.
			for _, j := range p.Integer {
				if f := s.X[j] - math.Floor(s.X[j]); f > 1e-6 && f < 1-1e-6 {
					t.Fatalf("trial %d: fractional incumbent x[%d]=%g", trial, j, s.X[j])
				}
			}
		case Optimal, Infeasible:
			// fine
		default:
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
	}
	if !sawFeasible {
		t.Log("node limit never bound — acceptable but unexpected")
	}
}

// TestBoundNeverAboveOptimum: on solved instances the reported bound
// equals the objective.
func TestBoundNeverAboveOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	for trial := 0; trial < 30; trial++ {
		p := knapsackProblem(rng, 10)
		s, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Status == Optimal && math.Abs(s.Bound-s.Objective) > 1e-6 {
			t.Fatalf("trial %d: optimal but bound %g != objective %g", trial, s.Bound, s.Objective)
		}
	}
}

// TestMixedIntegerContinuous: only some variables integral.
func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 2y, x integer in [0,3], y continuous in [0, 2.5],
	// x + y <= 4.2 => x = 3, y = 1.2? x+y<=4.2: x=3 -> y <= 1.2 and y <= 2.5
	// => y = 1.2, objective -5.4. Or x=2 -> y=2.2? y<=2.5: obj -6.4. Or
	// x=1 -> y=2.5 (cap), obj -6. x=2,y=2.2: -6.4 is best.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-1, -2},
			Upper:     []float64{3, 2.5},
		},
		Integer: []int{0},
	}
	p.LP.AddRow(lp.LE, 4.2, "cap", lp.Entry{Var: 0, Val: 1}, lp.Entry{Var: 1, Val: 1})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective+6.4) > 1e-6 {
		t.Fatalf("status %v obj %g, want optimal -6.4", s.Status, s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-2.2) > 1e-6 {
		t.Fatalf("x = %v, want [2 2.2]", s.X)
	}
}

func BenchmarkBranchAndBoundKnapsack(b *testing.B) {
	rng := rand.New(rand.NewSource(229))
	p := knapsackProblem(rng, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Solve(p, Options{})
		if err != nil || s.Status != Optimal {
			b.Fatalf("%v %v", err, s.Status)
		}
	}
}
