// Package milp solves mixed-integer linear programs by LP-relaxation
// branch and bound over the package lp simplex solver. Together they stand
// in for the GLPK v4.65 solver the paper drives its §4.5 formulation with.
//
// The search is best-first on the relaxation bound, branches on the most
// fractional integer variable, and supports an incumbent cutoff seeded
// from a known feasible solution (the windowed heuristic seeds it with the
// best heuristic schedule) plus node and improvement budgets — mirroring
// how the paper had to cap GLPK ("the solver was unable to solve this MILP
// at the scale of our interest in limited time").
package milp

import (
	"container/heap"
	"fmt"
	"math"

	"transched/internal/lp"
)

// Problem is an LP plus integrality requirements.
type Problem struct {
	LP lp.Problem
	// Integer lists the variables required to take integer values.
	Integer []int
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of explored nodes (0 means 200000).
	MaxNodes int
	// IncumbentObjective, when IncumbentSet, prunes nodes whose relaxation
	// bound is not below it (a feasible objective known from outside, e.g.
	// a heuristic schedule).
	IncumbentObjective float64
	IncumbentSet       bool
	// Gap is the relative optimality gap at which search stops (0 = exact).
	Gap float64
}

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal: proven optimal within the gap.
	Optimal Status = iota
	// Feasible: a feasible solution was found but the node budget ran out
	// before proving optimality.
	Feasible
	// Infeasible: no integer-feasible solution exists (or none better than
	// the incumbent cutoff).
	Infeasible
	// Unbounded: the relaxation is unbounded.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Bound is the best lower bound proven (useful when Status==Feasible).
	Bound float64
}

const intEps = 1e-6

type node struct {
	lower, upper []float64
	bound        float64
	index        int // heap bookkeeping
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *nodeQueue) Push(x interface{}) { n := x.(*node); n.index = len(*q); *q = append(*q, n) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := old[len(old)-1]
	*q = old[:len(old)-1]
	return n
}

// Solve runs branch and bound. The problem's own Lower/Upper bounds are
// respected; branching tightens copies of them.
func Solve(p *Problem, opts Options) (*Solution, error) {
	n := p.LP.NumVars
	for _, j := range p.Integer {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("milp: integer variable %d out of range", j)
		}
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}

	baseLower := make([]float64, n)
	baseUpper := make([]float64, n)
	for j := 0; j < n; j++ {
		if p.LP.Lower != nil {
			baseLower[j] = p.LP.Lower[j]
		}
		if p.LP.Upper != nil {
			baseUpper[j] = p.LP.Upper[j]
		} else {
			baseUpper[j] = math.Inf(1)
		}
	}

	best := math.Inf(1)
	if opts.IncumbentSet {
		best = opts.IncumbentObjective
	}
	var bestX []float64

	relax := func(lo, hi []float64) (*lp.Solution, error) {
		q := p.LP // shallow copy; bounds replaced
		q.Lower = lo
		q.Upper = hi
		return lp.Solve(&q)
	}

	root := &node{lower: baseLower, upper: baseUpper}
	sol, err := relax(root.lower, root.upper)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Unbounded:
		return &Solution{Status: Unbounded}, nil
	case lp.Infeasible:
		return &Solution{Status: Infeasible}, nil
	case lp.IterLimit:
		return nil, fmt.Errorf("milp: simplex iteration limit at root")
	}
	root.bound = sol.Objective
	rootX := sol.X

	queue := &nodeQueue{}
	heap.Init(queue)
	pushNode := func(nd *node) { heap.Push(queue, nd) }

	// Check the root before branching.
	if j := mostFractional(rootX, p.Integer); j < 0 {
		if sol.Objective < best-intEps {
			return &Solution{Status: Optimal, Objective: sol.Objective, X: rootX, Nodes: 1, Bound: sol.Objective}, nil
		}
		// The root is integral but no better than the seeded incumbent.
		return &Solution{Status: Infeasible, Objective: best, Nodes: 1, Bound: sol.Objective}, nil
	}
	pushNode(root)

	nodes := 1
	provenBound := root.bound
	for queue.Len() > 0 && nodes < maxNodes {
		nd := heap.Pop(queue).(*node)
		provenBound = nd.bound
		if !(nd.bound < best-intEps) {
			// Best-first: every remaining node is at least as bad.
			provenBound = nd.bound
			queue = &nodeQueue{}
			break
		}
		if opts.Gap > 0 && best < math.Inf(1) && (best-nd.bound) <= opts.Gap*math.Abs(best) {
			break
		}
		// Re-solve to get the fractional solution for branching (bounds
		// were computed when the node was created; solving again keeps
		// node memory small: two bound slices instead of a full X).
		sol, err := relax(nd.lower, nd.upper)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			continue
		}
		j := mostFractional(sol.X, p.Integer)
		if j < 0 { // integer feasible
			if sol.Objective < best-intEps {
				best = sol.Objective
				bestX = sol.X
			}
			continue
		}
		floor := math.Floor(sol.X[j])
		for side := 0; side < 2; side++ {
			lo := append([]float64(nil), nd.lower...)
			hi := append([]float64(nil), nd.upper...)
			if side == 0 {
				hi[j] = floor
			} else {
				lo[j] = floor + 1
			}
			if lo[j] > hi[j]+intEps {
				continue
			}
			child, err := relax(lo, hi)
			if err != nil {
				return nil, err
			}
			nodes++
			if child.Status != lp.Optimal {
				continue
			}
			if !(child.Objective < best-intEps) {
				continue
			}
			if jj := mostFractional(child.X, p.Integer); jj < 0 {
				if child.Objective < best-intEps {
					best = child.Objective
					bestX = child.X
				}
				continue
			}
			pushNode(&node{lower: lo, upper: hi, bound: child.Objective})
		}
	}

	switch {
	case bestX == nil && !opts.IncumbentSet:
		return &Solution{Status: Infeasible, Nodes: nodes, Bound: provenBound}, nil
	case bestX == nil:
		// Nothing better than the seeded incumbent was found.
		return &Solution{Status: Infeasible, Objective: best, Nodes: nodes, Bound: provenBound}, nil
	case queue.Len() == 0:
		return &Solution{Status: Optimal, Objective: best, X: bestX, Nodes: nodes, Bound: best}, nil
	default:
		return &Solution{Status: Feasible, Objective: best, X: bestX, Nodes: nodes, Bound: provenBound}, nil
	}
}

// mostFractional returns the integer-constrained variable farthest from an
// integer value, or -1 if all are integral.
func mostFractional(x []float64, integers []int) int {
	best, bestDist := -1, intEps
	for _, j := range integers {
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = j, dist
		}
	}
	return best
}
