// Package milp solves mixed-integer linear programs by LP-relaxation
// branch and bound over the package lp simplex solver. Together they stand
// in for the GLPK v4.65 solver the paper drives its §4.5 formulation with.
//
// The search is best-first on the relaxation bound, branches on the most
// fractional integer variable, and supports an incumbent cutoff seeded
// from a known feasible solution (the windowed heuristic seeds it with the
// best heuristic schedule) plus node, gap, wall-clock and improvement
// budgets — mirroring how the paper had to cap GLPK ("the solver was
// unable to solve this MILP at the scale of our interest in limited
// time").
//
// Since the warm-start rewrite the search no longer solves any LP from
// scratch past the root: every node carries its parent's optimal basis
// (lp.Basis), expansion refactorises that basis in a per-worker
// lp.Scratch and evaluates both children with a one-bound dual-simplex
// repair (lp.Workspace.Resolve) around a Snapshot/Restore pair. Nodes
// store only the bounds of the integer variables plus the basis, and the
// historical double solve per node — once at creation, again at pop — is
// gone. The incumbent also tightens integer bounds by reduced-cost
// fixing before a child is queued.
//
// Node expansion fans out over internal/par with the house
// index-addressed-slot discipline, in synchronous rounds of a fixed
// width that does not depend on the worker count: the set of nodes
// expanded each round is chosen serially in best-bound order with a
// deterministic (bound, creation sequence) tie-break, workers write
// results only to their own slot, and the reduce runs serially in slot
// order. The explored tree, node counts, and returned solution are
// therefore bit-identical at every Options.Workers setting — the same
// contract the solver portfolio and sweep engine obey. The pre-rewrite
// solver is preserved in reference_test.go and the differential suite
// pins the two to identical answers.
package milp

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"time"

	"transched/internal/lp"
	"transched/internal/par"
)

// Problem is an LP plus integrality requirements.
type Problem struct {
	LP lp.Problem
	// Integer lists the variables required to take integer values.
	Integer []int
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of explored nodes (0 means 200000).
	MaxNodes int
	// IncumbentObjective, when IncumbentSet, prunes nodes whose relaxation
	// bound is not below it (a feasible objective known from outside, e.g.
	// a heuristic schedule).
	IncumbentObjective float64
	IncumbentSet       bool
	// Gap is the relative optimality gap at which search stops (0 = exact).
	Gap float64
	// Workers bounds the goroutines used for node expansion (0 means
	// GOMAXPROCS, 1 is the inline serial path). The result is
	// bit-identical at every setting.
	Workers int
	// Deadline, when nonzero, stops the search once Clock reports a later
	// time; the best incumbent is returned as Feasible (Expired when none
	// exists). Clock must be supplied by the caller — this package never
	// reads the wall clock itself (detclock), so deadline behaviour stays
	// replayable under a synthetic clock.
	Deadline time.Time
	Clock    func() time.Time
	// Context, when non-nil, cancels the search the same way the deadline
	// does (checked between rounds).
	Context context.Context
	// KnownLowerBound, when KnownLowerBoundSet, is an externally proven
	// lower bound on the optimum (the windowed driver passes the OMIM
	// bound). Search stops with Optimal as soon as the incumbent reaches
	// it, and reduced-cost fixing uses it indirectly via earlier pruning.
	KnownLowerBound    float64
	KnownLowerBoundSet bool
	// RootBasis warm-starts the root relaxation (the windowed driver
	// carries the previous window's root basis). A mismatched or
	// numerically singular basis silently falls back to a cold solve.
	RootBasis *lp.Basis
}

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal: proven optimal within the gap.
	Optimal Status = iota
	// Feasible: a feasible solution was found but the node budget (or
	// deadline/context) ran out before proving optimality.
	Feasible
	// Infeasible: no integer-feasible solution exists (or none better than
	// the incumbent cutoff).
	Infeasible
	// Unbounded: the relaxation is unbounded.
	Unbounded
	// Expired: the deadline or context fired before any incumbent was
	// found; only Bound (and Objective, when an incumbent was seeded) is
	// meaningful.
	Expired
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Expired:
		return "expired"
	}
	return "unknown"
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Bound is the best lower bound proven (useful when Status==Feasible).
	Bound float64
	// SimplexIters is the total number of simplex pivots spent across the
	// search (root + every child repair).
	SimplexIters int
	// RootBasis is the optimal basis of the root relaxation, reusable as
	// Options.RootBasis of a structurally identical solve (the windowed
	// driver hands it from one window to the next).
	RootBasis *lp.Basis
}

const intEps = 1e-6

// roundWidth is the number of nodes expanded per synchronous round. It
// is a fixed constant — independent of Options.Workers — because the
// round composition is what the deterministic-parallelism contract
// hangs off: every worker count expands exactly the same node sets in
// the same order.
const roundWidth = 8

type bbNode struct {
	bound float64
	seq   int // creation sequence; tie-break after bound
	// branchIdx indexes Integer; the node's relaxation was fractional on
	// that variable at branchVal.
	branchIdx int
	branchVal float64
	basis     *lp.Basis
	// intLo/intHi are the node's bounds for the integer variables only
	// (in Integer order); continuous bounds never change during search.
	intLo, intHi []float64
	index        int // heap bookkeeping
}

type nodeQueue []*bbNode

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *nodeQueue) Push(x interface{}) { n := x.(*bbNode); n.index = len(*q); *q = append(*q, n) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := old[len(old)-1]
	*q = old[:len(old)-1]
	return n
}

// childResult is one evaluated child of an expanded node.
type childResult struct {
	status lp.Status
	obj    float64
	iters  int
	// x is non-nil when the child relaxation is integral (a new
	// candidate incumbent).
	x []float64
	// rx/rObj is a rounded integer-feasible candidate incumbent derived
	// from a fractional relaxation point (no extra LP solve).
	rx   []float64
	rObj float64
	// Fractional children that survive the round-start cutoff carry
	// everything needed to queue them.
	fracIdx      int
	fracVal      float64
	basis        *lp.Basis
	intLo, intHi []float64
	// pruned: optimal but not below the round-start cutoff. dropped:
	// reduced-cost fixing emptied the subtree's integer box.
	pruned, dropped bool
}

// expansion is one slot of a parallel round: both children of one node.
type expansion struct {
	children [2]childResult
	has      [2]bool
	skipped  bool // parent re-solve not optimal (numerical); node skipped
}

// slot bundles the per-worker reusable state; workers address it only
// through their own round index.
type slot struct {
	sc     *lp.Scratch
	lo, hi []float64
}

// Solve runs branch and bound. The problem's own Lower/Upper bounds are
// respected; branching tightens per-node copies of the integer ones.
func Solve(p *Problem, opts Options) (*Solution, error) {
	n := p.LP.NumVars
	for _, j := range p.Integer {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("milp: integer variable %d out of range", j)
		}
	}
	if !opts.Deadline.IsZero() && opts.Clock == nil {
		return nil, fmt.Errorf("milp: Options.Deadline requires Options.Clock (no wall-clock reads in this package)")
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}

	baseLo := make([]float64, n)
	baseHi := make([]float64, n)
	for j := 0; j < n; j++ {
		if p.LP.Lower != nil {
			baseLo[j] = p.LP.Lower[j]
		}
		if p.LP.Upper != nil {
			baseHi[j] = p.LP.Upper[j]
		} else {
			baseHi[j] = math.Inf(1)
		}
	}

	best := math.Inf(1)
	if opts.IncumbentSet {
		best = opts.IncumbentObjective
	}
	var bestX []float64

	ws, err := lp.NewWorkspace(&p.LP)
	if err != nil {
		return nil, err
	}
	rootSlot := &slot{sc: ws.NewScratch(), lo: make([]float64, n), hi: make([]float64, n)}
	sol, rootBasis, err := ws.SolveFrom(rootSlot.sc, baseLo, baseHi, opts.RootBasis)
	if err != nil {
		return nil, err
	}
	iters := sol.Iters
	switch sol.Status {
	case lp.Unbounded:
		return &Solution{Status: Unbounded, SimplexIters: iters}, nil
	case lp.Infeasible:
		return &Solution{Status: Infeasible, SimplexIters: iters}, nil
	case lp.IterLimit:
		return nil, fmt.Errorf("milp: simplex iteration limit at root")
	}

	// Check the root before branching.
	if j := mostFractional(sol.X, p.Integer); j < 0 {
		if sol.Objective < best-intEps {
			return &Solution{Status: Optimal, Objective: sol.Objective, X: sol.X, Nodes: 1,
				Bound: sol.Objective, SimplexIters: iters, RootBasis: rootBasis}, nil
		}
		// The root is integral but no better than the seeded incumbent.
		return &Solution{Status: Infeasible, Objective: best, Nodes: 1,
			Bound: sol.Objective, SimplexIters: iters, RootBasis: rootBasis}, nil
	}

	// A rounded incumbent from the fractional root point (no LP solve)
	// lets reduced-cost fixing and bound pruning engage from the first
	// round instead of waiting for the search to stumble on one.
	if rx, rObj, ok := roundHeuristic(p, sol.X, baseLo, baseHi); ok && rObj < best-intEps {
		best, bestX = rObj, rx
	}

	nInt := len(p.Integer)
	rootLo := make([]float64, nInt)
	rootHi := make([]float64, nInt)
	for t, j := range p.Integer {
		rootLo[t] = baseLo[j]
		rootHi[t] = baseHi[j]
	}
	if rcTighten(rootSlot.sc, p.Integer, sol.Objective, best, rootLo, rootHi) {
		// The incumbent already excludes every integer point below it.
		if bestX != nil {
			return &Solution{Status: Optimal, Objective: best, X: bestX, Nodes: 1,
				Bound: best, SimplexIters: iters, RootBasis: rootBasis}, nil
		}
		return &Solution{Status: Infeasible, Objective: best, Nodes: 1,
			Bound: sol.Objective, SimplexIters: iters, RootBasis: rootBasis}, nil
	}

	queue := &nodeQueue{}
	heap.Init(queue)
	rootJ := mostFractional(sol.X, p.Integer)
	heap.Push(queue, &bbNode{
		bound:     sol.Objective,
		branchIdx: intIndexOf(p.Integer, rootJ),
		branchVal: sol.X[rootJ],
		basis:     rootBasis,
		intLo:     rootLo,
		intHi:     rootHi,
	})

	expired := func() bool {
		if opts.Context != nil {
			select {
			case <-opts.Context.Done():
				return true
			default:
			}
		}
		return !opts.Deadline.IsZero() && opts.Clock().After(opts.Deadline)
	}

	slots := make([]*slot, roundWidth)
	results := make([]expansion, roundWidth)
	selected := make([]*bbNode, 0, roundWidth)

	nodes := 1
	seq := 0
	provenBound := sol.Objective
	expiredOut := false
	for queue.Len() > 0 && nodes < maxNodes {
		top := (*queue)[0]
		provenBound = top.bound
		if !(top.bound < best-intEps) {
			// Best-first: every remaining node is at least as bad.
			*queue = (*queue)[:0]
			break
		}
		if opts.Gap > 0 && best < math.Inf(1) && (best-top.bound) <= opts.Gap*math.Abs(best) {
			break
		}
		if opts.KnownLowerBoundSet && bestX != nil && best <= opts.KnownLowerBound+intEps {
			// The incumbent meets an externally proven lower bound:
			// optimal without draining the tree.
			return &Solution{Status: Optimal, Objective: best, X: bestX, Nodes: nodes,
				Bound: best, SimplexIters: iters, RootBasis: rootBasis}, nil
		}
		if expired() {
			expiredOut = true
			break
		}

		// Select this round's nodes serially, in (bound, seq) order. The
		// round width is capped by the node budget: each expansion adds
		// at most two nodes.
		k := roundWidth
		if rem := (maxNodes - nodes + 1) / 2; rem < k {
			k = rem
		}
		if k < 1 {
			k = 1
		}
		selected = selected[:0]
		for len(selected) < k && queue.Len() > 0 {
			if !((*queue)[0].bound < best-intEps) {
				break
			}
			selected = append(selected, heap.Pop(queue).(*bbNode))
		}
		if len(selected) == 0 {
			break
		}

		// Expand in parallel: slot i writes only results[i]/slots[i].
		// roundBest is frozen for the round so the arithmetic inside an
		// expansion does not depend on sibling slots (or worker count).
		roundBest := best
		par.ForEachIndex(opts.Workers, len(selected), func(i int) {
			if slots[i] == nil {
				slots[i] = &slot{sc: ws.NewScratch(), lo: make([]float64, n), hi: make([]float64, n)}
			}
			results[i] = expandNode(ws, slots[i], p, baseLo, baseHi, selected[i], roundBest)
		})

		// Serial reduce in slot order, children in side order: incumbent
		// updates and pushes happen in a deterministic sequence. A node
		// whose bound no longer beats the live incumbent (improved by an
		// earlier slot this round) is discarded, expansion and all —
		// exactly the serial prune-at-pop rule, so the accounted tree is
		// the one a one-node-per-round search would explore and the
		// speculative work shows up only in wall time.
		for i := range selected {
			if !(selected[i].bound < best-intEps) {
				continue
			}
			res := &results[i]
			for side := 0; side < 2; side++ {
				if !res.has[side] {
					continue
				}
				cr := &res.children[side]
				nodes++
				iters += cr.iters
				if cr.status != lp.Optimal {
					continue
				}
				if cr.x != nil { // integer feasible
					if cr.obj < best-intEps {
						best = cr.obj
						bestX = cr.x
					}
					continue
				}
				if cr.rx != nil && cr.rObj < best-intEps {
					best = cr.rObj
					bestX = cr.rx
				}
				if cr.pruned || cr.dropped {
					continue
				}
				if !(cr.obj < best-intEps) {
					continue
				}
				seq++
				heap.Push(queue, &bbNode{
					bound:     cr.obj,
					seq:       seq,
					branchIdx: cr.fracIdx,
					branchVal: cr.fracVal,
					basis:     cr.basis,
					intLo:     cr.intLo,
					intHi:     cr.intHi,
				})
			}
		}
	}

	switch {
	case bestX == nil && expiredOut:
		out := &Solution{Status: Expired, Nodes: nodes, Bound: provenBound, SimplexIters: iters, RootBasis: rootBasis}
		if opts.IncumbentSet {
			out.Objective = best
		}
		return out, nil
	case bestX == nil && !opts.IncumbentSet:
		return &Solution{Status: Infeasible, Nodes: nodes, Bound: provenBound, SimplexIters: iters, RootBasis: rootBasis}, nil
	case bestX == nil:
		// Nothing better than the seeded incumbent was found. A drained
		// queue is an exhaustive proof, so the bound closes on the
		// incumbent; only a budget stop leaves it at the frontier.
		if queue.Len() == 0 {
			provenBound = best
		}
		return &Solution{Status: Infeasible, Objective: best, Nodes: nodes, Bound: provenBound, SimplexIters: iters, RootBasis: rootBasis}, nil
	case queue.Len() == 0:
		return &Solution{Status: Optimal, Objective: best, X: bestX, Nodes: nodes, Bound: best, SimplexIters: iters, RootBasis: rootBasis}, nil
	default:
		return &Solution{Status: Feasible, Objective: best, X: bestX, Nodes: nodes, Bound: provenBound, SimplexIters: iters, RootBasis: rootBasis}, nil
	}
}

// expandNode re-creates the parent relaxation from its stored basis
// (zero pivots — the basis is optimal for those bounds) and evaluates
// both branching children with in-place one-bound resolves around a
// Snapshot/Restore pair. It is a pure function of (node, cutoff) plus
// its own slot, which is what makes the parallel rounds deterministic.
func expandNode(ws *lp.Workspace, sl *slot, p *Problem, baseLo, baseHi []float64, nd *bbNode, cutoff float64) expansion {
	copy(sl.lo, baseLo)
	copy(sl.hi, baseHi)
	for t, j := range p.Integer {
		sl.lo[j] = nd.intLo[t]
		sl.hi[j] = nd.intHi[t]
	}
	parent, _, err := ws.SolveFrom(sl.sc, sl.lo, sl.hi, nd.basis)
	if err != nil || parent.Status != lp.Optimal {
		// The node was optimal when queued; failing to reproduce that is
		// numerical. Skip the node (deterministically: the arithmetic
		// does not depend on the worker count).
		return expansion{skipped: true}
	}
	var res expansion
	res.children[0].iters = parent.Iters // attribute refactor work to the first child
	branchVar := p.Integer[nd.branchIdx]
	floor := math.Floor(nd.branchVal)
	sl.sc.Snapshot()
	for side := 0; side < 2; side++ {
		if side == 1 {
			sl.sc.Restore()
		}
		var nLo, nHi float64
		if side == 0 {
			nLo, nHi = nd.intLo[nd.branchIdx], floor
		} else {
			nLo, nHi = floor+1, nd.intHi[nd.branchIdx]
		}
		if nLo > nHi+intEps {
			continue
		}
		child, cBasis, err := ws.Resolve(sl.sc, branchVar, nLo, nHi)
		if err != nil {
			continue
		}
		res.has[side] = true
		cr := &res.children[side]
		cr.status = child.Status
		cr.obj = child.Objective
		cr.iters += child.Iters
		if child.Status != lp.Optimal {
			continue
		}
		if jj := mostFractional(child.X, p.Integer); jj < 0 {
			cr.x = child.X
			continue
		} else if child.Objective < cutoff-intEps {
			cr.fracIdx = intIndexOf(p.Integer, jj)
			cr.fracVal = child.X[jj]
			cr.basis = cBasis
			cr.intLo = append([]float64(nil), nd.intLo...)
			cr.intHi = append([]float64(nil), nd.intHi...)
			if side == 0 {
				cr.intHi[nd.branchIdx] = nHi
			} else {
				cr.intLo[nd.branchIdx] = nLo
			}
			cr.dropped = rcTighten(sl.sc, p.Integer, child.Objective, cutoff, cr.intLo, cr.intHi)
			if !cr.dropped {
				sl.lo[branchVar], sl.hi[branchVar] = nLo, nHi
				if rx, rObj, ok := roundHeuristic(p, child.X, sl.lo, sl.hi); ok {
					cr.rx, cr.rObj = rx, rObj
				}
			}
		} else {
			cr.pruned = true
		}
	}
	return res
}

// rcTighten applies reduced-cost fixing: with the relaxation optimal at
// obj and any improving integer point required to be below cutoff -
// intEps, a nonbasic integer variable with reduced cost d can move at
// most (cutoff - intEps - obj)/|d| from its bound. Bounds in intLo/intHi
// (Integer order) are tightened in place, rounded outward so no integer
// point below the cutoff is ever cut. Reports whether some variable's
// box became empty — the subtree then contains no improving integer
// point.
func rcTighten(sc *lp.Scratch, integers []int, obj, cutoff float64, intLo, intHi []float64) bool {
	if math.IsInf(cutoff, 1) {
		return false
	}
	slack := cutoff - intEps - obj
	if slack < 0 {
		return false
	}
	empty := false
	for t, j := range integers {
		d, atUpper, basic := sc.ReducedCost(j)
		if basic {
			continue
		}
		ad := math.Abs(d)
		if ad <= 1e-9 {
			continue
		}
		width := slack / ad
		if atUpper {
			if nLo := math.Ceil(intHi[t] - width - intEps); nLo > intLo[t] {
				intLo[t] = nLo
			}
		} else {
			if nHi := math.Floor(intLo[t] + width + intEps); nHi < intHi[t] {
				intHi[t] = nHi
			}
		}
		if intLo[t] > intHi[t]+intEps {
			empty = true
		}
	}
	return empty
}

// roundHeuristic tries to turn a fractional relaxation point into an
// integer-feasible incumbent without any LP solve: integer variables
// are rounded (nearest, then floor as a fallback — floor is always
// feasible for knapsack-shaped rows) and clamped to the node's bounds,
// continuous variables keep their relaxation values, and the candidate
// is accepted only if it satisfies every row. Both candidates are
// evaluated deterministically; the better feasible one is returned.
func roundHeuristic(p *Problem, x, lo, hi []float64) ([]float64, float64, bool) {
	var bestX []float64
	bestObj := math.Inf(1)
	cand := make([]float64, len(x))
	for mode := 0; mode < 2; mode++ {
		copy(cand, x)
		ok := true
		for _, j := range p.Integer {
			var v float64
			if mode == 0 {
				v = math.Round(x[j])
			} else {
				v = math.Floor(x[j] + intEps)
			}
			minV, maxV := math.Ceil(lo[j]-intEps), math.Floor(hi[j]+intEps)
			if minV > maxV { // no integer in this variable's box
				ok = false
				break
			}
			if v < minV {
				v = minV
			}
			if v > maxV {
				v = maxV
			}
			cand[j] = v
		}
		if !ok || !rowsFeasible(p, cand) {
			continue
		}
		obj := 0.0
		for j, c := range p.LP.Objective {
			obj += c * cand[j]
		}
		if obj < bestObj {
			bestObj = obj
			bestX = append([]float64(nil), cand...)
		}
	}
	return bestX, bestObj, bestX != nil
}

// rowsFeasible checks every constraint row at x to a fixed tolerance.
func rowsFeasible(p *Problem, x []float64) bool {
	const tol = 1e-7
	for _, r := range p.LP.Rows {
		dot := 0.0
		for _, e := range r.Coef {
			dot += e.Val * x[e.Var]
		}
		switch r.Sense {
		case lp.LE:
			if dot > r.RHS+tol {
				return false
			}
		case lp.GE:
			if dot < r.RHS-tol {
				return false
			}
		case lp.EQ:
			if math.Abs(dot-r.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// intIndexOf returns the position of variable j in the Integer list.
func intIndexOf(integers []int, j int) int {
	for t, v := range integers {
		if v == j {
			return t
		}
	}
	return -1
}

// mostFractional returns the integer-constrained variable farthest from an
// integer value, or -1 if all are integral.
func mostFractional(x []float64, integers []int) int {
	best, bestDist := -1, intEps
	for _, j := range integers {
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = j, dist
		}
	}
	return best
}
