// Package prof implements the offline profiling hooks shared by the
// command-line tools (-cpuprofile/-memprofile), complementing the live
// pprof endpoints of the -debug-addr server (OBSERVABILITY.md): start a
// CPU profile before the run, write a heap profile after it, and leave
// the files where `go tool pprof` expects them.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two file paths; empty paths
// disable the corresponding profile. The returned stop function must run
// exactly once after the workload (defer works): it stops the CPU
// profile and writes the heap profile — after a GC, so the snapshot
// shows live memory rather than collectable garbage.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
