package model

import (
	"math"
	"testing"

	"transched/internal/core"
	"transched/internal/trace"
)

func vec(bytes, mem, flops, traffic float64) []float64 {
	return Features{Bytes: bytes, Mem: mem, Flops: flops, MemTraffic: traffic}.Vector()
}

func TestFeaturesVectorMatchesNames(t *testing.T) {
	f := Features{Bytes: 1, Mem: 2, Flops: 3, MemTraffic: 4}
	v := f.Vector()
	if len(v) != len(Names) {
		t.Fatalf("Vector len %d, Names len %d", len(v), len(Names))
	}
	want := []float64{1, 2, 3, 4}
	for i := range v {
		if v[i] != want[i] {
			t.Errorf("Vector[%d] = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestFromRow(t *testing.T) {
	// Reordered columns with an extra one.
	names := []string{"flops", "extra", "bytes", "mem_traffic", "mem"}
	row := []float64{3, 99, 1, 4, 2}
	v, ok := FromRow(names, row)
	if !ok {
		t.Fatal("FromRow failed")
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if v[i] != want {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want)
		}
	}
	if _, ok := FromRow([]string{"bytes"}, []float64{1}); ok {
		t.Error("missing columns should fail")
	}
	if _, ok := FromRow([]string{"bytes"}, []float64{1, 2}); ok {
		t.Error("len mismatch should fail")
	}
}

func TestExtract(t *testing.T) {
	traces := []*trace.Trace{
		{ // no annotations: skipped
			Tasks: []core.Task{{Name: "a", Comm: 1, Comp: 2}},
		},
		{
			Tasks:        []core.Task{{Name: "b", Comm: 3, Comp: 4}, {Name: "c", Comm: 5, Comp: 6}},
			FeatureNames: []string{"bytes", "mem", "flops", "mem_traffic"},
			Features:     [][]float64{{10, 20, 30, 40}, nil}, // c has no row: skipped
		},
	}
	cm, cp := Extract(traces)
	if cm.N() != 1 || cp.N() != 1 {
		t.Fatalf("N = %d/%d, want 1/1", cm.N(), cp.N())
	}
	if cm.Y[0] != 3 || cp.Y[0] != 4 {
		t.Errorf("targets = %g/%g, want 3/4", cm.Y[0], cp.Y[0])
	}
	if cm.X[0][0] != 10 || cp.X[0][3] != 40 {
		t.Errorf("features = %v", cm.X[0])
	}
}

// linearDataset builds y = 2 + 3*x0 - 0.5*x2 with collinear x1 = 2*x0,
// the same structural collinearity the chem features carry (mem tracks
// bytes exactly for every task type).
func linearDataset(n int) Dataset {
	var ds Dataset
	for i := 0; i < n; i++ {
		x0 := float64(i%17) + 0.25*float64(i%5)
		x2 := float64((i*7)%13) - 3
		x := vec(x0, 2*x0, x2, float64(i%3))
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, 2+3*x0-0.5*x2)
	}
	return ds
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	ds := linearDataset(200)
	r, err := FitRidge(ds, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range ds.X {
		if got := r.Predict(x); math.Abs(got-ds.Y[i]) > 1e-6*(1+math.Abs(ds.Y[i])) {
			t.Fatalf("Predict(%v) = %g, want %g", x, got, ds.Y[i])
		}
	}
}

func TestRidgeErrors(t *testing.T) {
	if _, err := FitRidge(Dataset{}, 1); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := FitRidge(linearDataset(10), 0); err == nil {
		t.Error("lambda 0 should fail")
	}
	if _, err := FitRidge(linearDataset(10), -1); err == nil {
		t.Error("negative lambda should fail")
	}
	bad := linearDataset(10)
	bad.Y[3] = math.NaN()
	if _, err := FitRidge(bad, 1e-6); err == nil {
		t.Error("NaN target should fail")
	}
	ragged := linearDataset(10)
	ragged.X[2] = []float64{1}
	if _, err := FitRidge(ragged, 1e-6); err == nil {
		t.Error("ragged design should fail")
	}
	short := linearDataset(10)
	short.Y = short.Y[:5]
	if _, err := FitRidge(short, 1e-6); err == nil {
		t.Error("X/Y length mismatch should fail")
	}
}

func TestRidgeConstantColumnAndTarget(t *testing.T) {
	var ds Dataset
	for i := 0; i < 8; i++ {
		ds.X = append(ds.X, vec(1, 1, 1, 1)) // all columns constant
		ds.Y = append(ds.Y, 7)
	}
	r, err := FitRidge(ds, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict(vec(1, 1, 1, 1)); math.Abs(got-7) > 1e-9 {
		t.Errorf("constant fit predicts %g, want 7", got)
	}
}

func TestKernelRidgeFitsNonlinear(t *testing.T) {
	// y = max(x0, x2): the kink a linear model smooths over.
	var ds Dataset
	for i := 0; i < 300; i++ {
		x0 := float64(i % 20)
		x2 := float64((i * 13) % 20)
		ds.X = append(ds.X, vec(x0, 0, x2, 0))
		ds.Y = append(ds.Y, math.Max(x0, x2))
	}
	k, err := FitKernelRidge(ds, 1e-8, 42)
	if err != nil {
		t.Fatal(err)
	}
	var kerr, lerr float64
	r, err := FitRidge(ds, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range ds.X {
		kerr += math.Abs(k.Predict(x) - ds.Y[i])
		lerr += math.Abs(r.Predict(x) - ds.Y[i])
	}
	if kerr >= lerr {
		t.Errorf("kernel ridge (%g) should beat linear (%g) on max()", kerr, lerr)
	}
}

func TestKernelRidgeSubsamplesDeterministically(t *testing.T) {
	ds := linearDataset(maxKernelPoints + 100)
	k1, err := FitKernelRidge(ds, 1e-6, 7)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := FitKernelRidge(ds, 1e-6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1.xs) != maxKernelPoints {
		t.Errorf("retained %d points, want %d", len(k1.xs), maxKernelPoints)
	}
	if k1.Digest() != k2.Digest() {
		t.Errorf("same seed, different digests: %s vs %s", k1.Digest(), k2.Digest())
	}
	k3, err := FitKernelRidge(ds, 1e-6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Digest() == k3.Digest() {
		t.Error("different seeds should subsample differently")
	}
}

func TestCrossValidate(t *testing.T) {
	ds := linearDataset(100)
	rep, err := CrossValidate(ds, 5, 1, func(d Dataset) (Predictor, error) {
		return FitRidge(d, 1e-9)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != 5 || rep.N != 100 {
		t.Errorf("rep = %+v", rep)
	}
	if rep.MAPE > 1e-6 {
		t.Errorf("MAPE = %g on an exactly linear dataset", rep.MAPE)
	}
	if rep.R2 < 1-1e-9 {
		t.Errorf("R2 = %g on an exactly linear dataset", rep.R2)
	}
	if _, err := CrossValidate(ds, 1, 1, nil); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := CrossValidate(linearDataset(3), 5, 1, nil); err == nil {
		t.Error("n < k should fail")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	ds := linearDataset(60)
	fit := func(d Dataset) (Predictor, error) { return FitRidge(d, 1e-6) }
	a, err := CrossValidate(ds, 4, 9, fit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(ds, 4, 9, fit)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different reports: %+v vs %+v", a, b)
	}
}

func TestPerturbTasks(t *testing.T) {
	tasks := []core.Task{
		{Name: "a", Comm: 1, Comp: 2, Mem: 3},
		{Name: "b", Comm: 4, Comp: 5, Mem: 6},
	}
	// sigma 0: identical copy, input untouched.
	out := PerturbTasks(tasks, 0, 1)
	for i := range tasks {
		if out[i] != tasks[i] {
			t.Errorf("sigma 0 changed task %d: %+v", i, out[i])
		}
	}
	out = PerturbTasks(tasks, 0.5, 1)
	if &out[0] == &tasks[0] {
		t.Fatal("PerturbTasks must copy")
	}
	for i := range tasks {
		if out[i].Mem != tasks[i].Mem {
			t.Errorf("Mem must be preserved, task %d: %g", i, out[i].Mem)
		}
		if out[i].Name != tasks[i].Name {
			t.Errorf("Name changed, task %d", i)
		}
		if out[i].Comm <= 0 || out[i].Comp <= 0 {
			t.Errorf("multiplicative noise kept signs, task %d: %+v", i, out[i])
		}
	}
	if out[0].Comm == tasks[0].Comm && out[1].Comm == tasks[1].Comm {
		t.Error("sigma 0.5 left every Comm unchanged")
	}
	// Deterministic per seed.
	again := PerturbTasks(tasks, 0.5, 1)
	for i := range out {
		if out[i] != again[i] {
			t.Errorf("same seed, different perturbation at %d", i)
		}
	}
	other := PerturbTasks(tasks, 0.5, 2)
	if other[0] == out[0] && other[1] == out[1] {
		t.Error("different seeds should perturb differently")
	}
}

func TestFitOptionsValidation(t *testing.T) {
	if _, _, err := FitDurationModel(nil, FitOptions{}); err == nil {
		t.Error("no annotated traces should fail")
	}
	if _, _, err := FitDurationModel(nil, FitOptions{Kind: "forest"}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestDurationModelClampsNegative(t *testing.T) {
	// A linear extrapolation far below the training range goes negative;
	// the model must clamp.
	var ds Dataset
	for i := 0; i < 20; i++ {
		x := float64(i + 100)
		ds.X = append(ds.X, vec(x, 0, 0, 0))
		ds.Y = append(ds.Y, x) // y = x, so y(x=-1e6) < 0
	}
	r, err := FitRidge(ds, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	m := &DurationModel{CM: r, CP: r, Sigma: MinSigma}
	comm, comp := m.PredictTask(vec(-1e6, 0, 0, 0))
	if comm != 0 || comp != 0 {
		t.Errorf("PredictTask should clamp to 0, got %g/%g", comm, comp)
	}
}
