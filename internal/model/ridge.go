package model

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Ridge is a closed-form L2-regularised linear model fit by the normal
// equations on standardised features. Standardisation keeps the
// Gram matrix well-conditioned (the raw columns span ~12 orders of
// magnitude between latency seconds and contraction flops) and makes
// one lambda meaningful across columns; with lambda > 0 the regularised
// Gram matrix is positive definite even when columns are exactly
// collinear (bytes and mem are, for every chem task type), so the
// Cholesky factorisation cannot fail on real inputs.
type Ridge struct {
	// Lambda is the regularisation strength the model was fit with.
	Lambda float64
	// mean and std standardise incoming features; coef applies to the
	// standardised values; intercept is the target mean.
	mean, std, coef []float64
	intercept       float64
}

// FitRidge solves (Z'Z + lambda*n*I) beta = Z'(y - mean(y)) on the
// standardised design Z by Cholesky, entirely in closed form: same
// inputs, same bits, on every run and worker count. lambda <= 0 is
// rejected — the collinear-column guarantee above needs it positive.
func FitRidge(ds Dataset, lambda float64) (*Ridge, error) {
	n := ds.N()
	if n == 0 {
		return nil, fmt.Errorf("model: empty dataset")
	}
	if len(ds.Y) != n {
		return nil, fmt.Errorf("model: %d samples, %d targets", n, len(ds.Y))
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("model: lambda %g must be positive", lambda)
	}
	d := len(ds.X[0])
	if d == 0 {
		return nil, fmt.Errorf("model: zero-width design")
	}
	for i, x := range ds.X {
		if len(x) != d {
			return nil, fmt.Errorf("model: sample %d has %d features, want %d", i, len(x), d)
		}
		if !finite(x) || math.IsNaN(ds.Y[i]) || math.IsInf(ds.Y[i], 0) {
			return nil, fmt.Errorf("model: sample %d is not finite", i)
		}
	}

	r := &Ridge{Lambda: lambda, mean: make([]float64, d), std: make([]float64, d), coef: make([]float64, d)}
	for j := 0; j < d; j++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += ds.X[i][j]
		}
		r.mean[j] = sum / float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			dev := ds.X[i][j] - r.mean[j]
			ss += dev * dev
		}
		r.std[j] = math.Sqrt(ss / float64(n))
		if r.std[j] == 0 {
			// A constant column carries no signal; mapping it to zero
			// keeps it out of the fit without special-casing the solver.
			r.std[j] = 1
		}
	}
	ysum := 0.0
	for _, y := range ds.Y {
		ysum += y
	}
	r.intercept = ysum / float64(n)

	// Gram matrix A = Z'Z + lambda*n*I and moment vector b = Z'yc, both
	// accumulated in fixed index order.
	a := make([][]float64, d)
	for j := range a {
		a[j] = make([]float64, d)
	}
	b := make([]float64, d)
	z := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			z[j] = (ds.X[i][j] - r.mean[j]) / r.std[j]
		}
		yc := ds.Y[i] - r.intercept
		for j := 0; j < d; j++ {
			for k := j; k < d; k++ {
				a[j][k] += z[j] * z[k]
			}
			b[j] += z[j] * yc
		}
	}
	for j := 0; j < d; j++ {
		a[j][j] += lambda * float64(n)
		for k := 0; k < j; k++ {
			a[j][k] = a[k][j]
		}
	}
	coef, err := cholSolve(a, b)
	if err != nil {
		return nil, err
	}
	r.coef = coef
	return r, nil
}

// Predict implements Predictor.
func (r *Ridge) Predict(x []float64) float64 {
	y := r.intercept
	for j := range r.coef {
		if j >= len(x) {
			break
		}
		y += r.coef[j] * (x[j] - r.mean[j]) / r.std[j]
	}
	return y
}

// Coef returns the fitted coefficients on the standardised scale,
// followed by the intercept. The slice is a copy.
func (r *Ridge) Coef() []float64 {
	out := append([]float64(nil), r.coef...)
	return append(out, r.intercept)
}

// Digest implements Predictor: FNV-64a over the IEEE-754 bits of the
// standardisation parameters and coefficients, in fixed order. Equal
// digests mean bit-identical models.
func (r *Ridge) Digest() string {
	return digestFloats(r.mean, r.std, r.coef, []float64{r.intercept, r.Lambda})
}

func digestFloats(groups ...[]float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, g := range groups {
		for _, v := range g {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// cholSolve solves the symmetric positive-definite system a*x = b by
// Cholesky factorisation (a = L L'), overwriting a's lower triangle with
// L. Deterministic: fixed elimination order, no pivoting — SPD systems
// need none.
func cholSolve(a [][]float64, b []float64) ([]float64, error) {
	d := len(a)
	for j := 0; j < d; j++ {
		sum := a[j][j]
		for k := 0; k < j; k++ {
			sum -= a[j][k] * a[j][k]
		}
		if sum <= 0 || math.IsNaN(sum) {
			return nil, fmt.Errorf("model: Gram matrix not positive definite at column %d", j)
		}
		a[j][j] = math.Sqrt(sum)
		for i := j + 1; i < d; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= a[i][k] * a[j][k]
			}
			a[i][j] = s / a[j][j]
		}
	}
	// Forward substitution L w = b, then back substitution L' x = w.
	x := make([]float64, d)
	for i := 0; i < d; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i][k] * x[k]
		}
		x[i] = s / a[i][i]
	}
	for i := d - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < d; k++ {
			s -= a[k][i] * x[k]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}
