package model

import (
	"fmt"
	"math"
	"math/rand"

	"transched/internal/core"
	"transched/internal/trace"
)

// MinSigma floors the calibrated noise level. The chem workloads derive
// durations from the same linear cost model the features encode, so an
// in-distribution fit is near-exact and the raw residual spread can be
// numerically zero — which would make every "calibrated" noise level
// zero too and the robustness sweep vacuous. Real instrumented traces
// carry at least a few percent of run-to-run variation (the paper's
// Cascade measurements were averaged over repetitions for exactly that
// reason), so the floor stands in for the measurement noise the
// synthetic workloads lack.
const MinSigma = 0.05

// Kinds of duration estimator FitDurationModel accepts.
const (
	KindRidge  = "ridge"
	KindKernel = "kernel"
)

// FitOptions configures FitDurationModel. Zero values mean: ridge,
// lambda 1e-6, 5 folds, seed 1.
type FitOptions struct {
	// Kind selects the estimator: KindRidge (default) or KindKernel.
	Kind string
	// Lambda is the L2 regularisation strength (default 1e-6).
	Lambda float64
	// Folds is the cross-validation fold count (default 5).
	Folds int
	// Seed drives fold assignment, kernel subsampling and nothing else.
	Seed int64
}

func (o FitOptions) withDefaults() (FitOptions, error) {
	if o.Kind == "" {
		o.Kind = KindRidge
	}
	if o.Kind != KindRidge && o.Kind != KindKernel {
		return o, fmt.Errorf("model: unknown estimator kind %q (want %s or %s)", o.Kind, KindRidge, KindKernel)
	}
	if o.Lambda == 0 {
		o.Lambda = 1e-6
	}
	if o.Folds == 0 {
		o.Folds = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// DurationModel packages one fitted estimator per duration component.
type DurationModel struct {
	// CM predicts communication time, CP computation time.
	CM, CP Predictor
	// Sigma is the calibrated lognormal noise level: the pooled standard
	// deviation of log(predicted/actual) over the training residuals,
	// floored at MinSigma.
	Sigma float64
}

// PredictTask returns the predicted (comm, comp) for a canonical feature
// vector, clamped to be non-negative — a duration below zero is an
// artefact of the fit, not a physical estimate.
func (m *DurationModel) PredictTask(x []float64) (comm, comp float64) {
	return math.Max(0, m.CM.Predict(x)), math.Max(0, m.CP.Predict(x))
}

// FitReport carries everything the CLIs print about a fit.
type FitReport struct {
	Kind string
	// NCM and NCP are the training-set sizes (identical today — every
	// annotated task contributes to both — but reported separately so a
	// future partial annotation doesn't silently lie).
	NCM, NCP int
	// CVCM and CVCP are the cross-validation reports per component.
	CVCM, CVCP CVReport
	// DigestCM and DigestCP pin the fitted parameters bit-for-bit.
	DigestCM, DigestCP string
	// SigmaRaw is the residual spread before the MinSigma floor; Sigma
	// is the value the robustness sweep scales.
	SigmaRaw, Sigma float64
}

// FitDurationModel extracts the CM/CP datasets from annotated traces,
// fits the selected estimator to each, cross-validates both, and
// calibrates the noise level from the training residuals. Deterministic
// for fixed traces and options.
func FitDurationModel(traces []*trace.Trace, opts FitOptions) (*DurationModel, *FitReport, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	cm, cp := Extract(traces)
	if cm.N() == 0 {
		return nil, nil, fmt.Errorf("model: no feature-annotated tasks in %d traces", len(traces))
	}
	fit := func(ds Dataset) (Predictor, error) {
		if opts.Kind == KindKernel {
			return FitKernelRidge(ds, opts.Lambda, opts.Seed)
		}
		return FitRidge(ds, opts.Lambda)
	}
	pcm, err := fit(cm)
	if err != nil {
		return nil, nil, fmt.Errorf("model: CM fit: %w", err)
	}
	pcp, err := fit(cp)
	if err != nil {
		return nil, nil, fmt.Errorf("model: CP fit: %w", err)
	}
	cvcm, err := CrossValidate(cm, opts.Folds, opts.Seed, fit)
	if err != nil {
		return nil, nil, fmt.Errorf("model: CM cross-validation: %w", err)
	}
	cvcp, err := CrossValidate(cp, opts.Folds, opts.Seed+1, fit)
	if err != nil {
		return nil, nil, fmt.Errorf("model: CP cross-validation: %w", err)
	}
	raw := residualSigma(pcm, cm, pcp, cp)
	m := &DurationModel{CM: pcm, CP: pcp, Sigma: math.Max(raw, MinSigma)}
	rep := &FitReport{
		Kind: opts.Kind,
		NCM:  cm.N(), NCP: cp.N(),
		CVCM: cvcm, CVCP: cvcp,
		DigestCM: pcm.Digest(), DigestCP: pcp.Digest(),
		SigmaRaw: raw, Sigma: m.Sigma,
	}
	return m, rep, nil
}

// residualSigma pools the CM and CP training residuals on the log scale
// and returns their standard deviation: the sigma of the multiplicative
// (lognormal) error model actual = predicted * exp(sigma*z). Pairs where
// either side is at or below zero carry no ratio information and are
// skipped.
func residualSigma(pcm Predictor, cm Dataset, pcp Predictor, cp Dataset) float64 {
	var logs []float64
	collect := func(p Predictor, ds Dataset) {
		for i, x := range ds.X {
			pred := p.Predict(x)
			if pred > 0 && ds.Y[i] > 0 {
				logs = append(logs, math.Log(pred/ds.Y[i]))
			}
		}
	}
	collect(pcm, cm)
	collect(pcp, cp)
	if len(logs) < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range logs {
		mean += v
	}
	mean /= float64(len(logs))
	ss := 0.0
	for _, v := range logs {
		dev := v - mean
		ss += dev * dev
	}
	return math.Sqrt(ss / float64(len(logs)))
}

// PerturbTasks returns a copy of tasks with communication and
// computation times multiplied by independent lognormal factors
// exp(sigma*z), z ~ N(0,1) from the seeded source — the calibrated
// misprediction model the robustness sweep runs the heuristics under.
// Memory requirements are untouched: capacity is known exactly (it is a
// declared allocation, not a measured duration), so the feasibility
// structure of the instance is preserved. sigma = 0 returns an
// unmodified copy without consuming randomness.
func PerturbTasks(tasks []core.Task, sigma float64, seed int64) []core.Task {
	out := append([]core.Task(nil), tasks...)
	if sigma == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range out {
		out[i].Comm *= math.Exp(sigma * rng.NormFloat64())
		out[i].Comp *= math.Exp(sigma * rng.NormFloat64())
	}
	return out
}
