package model

import (
	"fmt"
	"math"
	"math/rand"
)

// CVReport summarises a k-fold cross-validation: MAPE (mean absolute
// percentage error over targets distinguishable from zero) and R^2
// (coefficient of determination, pooled over every held-out
// prediction).
type CVReport struct {
	K    int
	N    int
	MAPE float64
	R2   float64
}

// mapeEps guards the MAPE denominator: targets at or below it are
// counted into R^2 but not MAPE (a zero-duration task has no meaningful
// percentage error).
const mapeEps = 1e-12

// CrossValidate runs seeded k-fold cross-validation of fit over ds: a
// seeded permutation deals samples into k folds, each fold is held out
// once, and the predictions on held-out samples are pooled into one
// CVReport. Deterministic for fixed (ds, k, seed, fit).
func CrossValidate(ds Dataset, k int, seed int64, fit func(Dataset) (Predictor, error)) (CVReport, error) {
	n := ds.N()
	if k < 2 {
		return CVReport{}, fmt.Errorf("model: k-fold needs k >= 2, got %d", k)
	}
	if n < k {
		return CVReport{}, fmt.Errorf("model: %d samples cannot fill %d folds", n, k)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	fold := make([]int, n)
	for pos, i := range perm {
		fold[i] = pos % k
	}

	preds := make([]float64, n)
	for f := 0; f < k; f++ {
		var train Dataset
		for i := 0; i < n; i++ {
			if fold[i] != f {
				train.X = append(train.X, ds.X[i])
				train.Y = append(train.Y, ds.Y[i])
			}
		}
		p, err := fit(train)
		if err != nil {
			return CVReport{}, fmt.Errorf("model: fold %d: %w", f, err)
		}
		for i := 0; i < n; i++ {
			if fold[i] == f {
				preds[i] = p.Predict(ds.X[i])
			}
		}
	}

	mean := 0.0
	for _, y := range ds.Y {
		mean += y
	}
	mean /= float64(n)
	var sse, sst, ape float64
	apeN := 0
	for i := 0; i < n; i++ {
		d := preds[i] - ds.Y[i]
		sse += d * d
		dev := ds.Y[i] - mean
		sst += dev * dev
		if ds.Y[i] > mapeEps {
			ape += math.Abs(d) / ds.Y[i]
			apeN++
		}
	}
	rep := CVReport{K: k, N: n}
	if apeN > 0 {
		rep.MAPE = ape / float64(apeN)
	}
	if sst > 0 {
		rep.R2 = 1 - sse/sst
	} else if sse == 0 {
		rep.R2 = 1
	}
	return rep, nil
}
