package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// maxKernelPoints caps the kernel-ridge training set: the fit is O(m^3)
// in the retained sample count, and a few hundred points already pin the
// smooth cost surfaces the chem workloads produce.
const maxKernelPoints = 512

// KernelRidge is an RBF kernel ridge model: alpha = (K + lambda*m*I)^-1
// yc on a seeded subsample of the (standardised) training set, with the
// bandwidth set by the median-pairwise-distance heuristic. It captures
// the max(flops, traffic) kink in the compute cost model that a plain
// linear fit smooths over.
type KernelRidge struct {
	// Lambda is the regularisation strength the model was fit with.
	Lambda float64
	// Gamma is the RBF exponent coefficient exp(-Gamma * ||x-z||^2).
	Gamma float64

	mean, std []float64
	xs        [][]float64 // standardised retained samples
	alpha     []float64
	intercept float64
}

// FitKernelRidge fits an RBF kernel ridge model. The subsample (when the
// dataset exceeds maxKernelPoints) is drawn by a seeded permutation, so
// the fit is as deterministic as the closed-form ridge: same inputs and
// seed, same bits.
func FitKernelRidge(ds Dataset, lambda float64, seed int64) (*KernelRidge, error) {
	n := ds.N()
	if n == 0 {
		return nil, fmt.Errorf("model: empty dataset")
	}
	if len(ds.Y) != n {
		return nil, fmt.Errorf("model: %d samples, %d targets", n, len(ds.Y))
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("model: lambda %g must be positive", lambda)
	}
	d := len(ds.X[0])
	for i, x := range ds.X {
		if len(x) != d {
			return nil, fmt.Errorf("model: sample %d has %d features, want %d", i, len(x), d)
		}
		if !finite(x) || math.IsNaN(ds.Y[i]) || math.IsInf(ds.Y[i], 0) {
			return nil, fmt.Errorf("model: sample %d is not finite", i)
		}
	}

	k := &KernelRidge{Lambda: lambda, mean: make([]float64, d), std: make([]float64, d)}
	for j := 0; j < d; j++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += ds.X[i][j]
		}
		k.mean[j] = sum / float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			dev := ds.X[i][j] - k.mean[j]
			ss += dev * dev
		}
		k.std[j] = math.Sqrt(ss / float64(n))
		if k.std[j] == 0 {
			k.std[j] = 1
		}
	}

	// Seeded subsample, kept in ascending index order so the retained
	// set (and so the Gram matrix) has one canonical layout.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if n > maxKernelPoints {
		rng := rand.New(rand.NewSource(seed))
		idx = rng.Perm(n)[:maxKernelPoints]
		sort.Ints(idx)
	}
	m := len(idx)
	k.xs = make([][]float64, m)
	y := make([]float64, m)
	for i, src := range idx {
		z := make([]float64, d)
		for j := 0; j < d; j++ {
			z[j] = (ds.X[src][j] - k.mean[j]) / k.std[j]
		}
		k.xs[i] = z
		y[i] = ds.Y[src]
	}
	ysum := 0.0
	for _, v := range y {
		ysum += v
	}
	k.intercept = ysum / float64(m)

	k.Gamma = medianGamma(k.xs)

	// (K + lambda*m*I) alpha = yc via the shared Cholesky.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			v := math.Exp(-k.Gamma * sqDist(k.xs[i], k.xs[j]))
			a[i][j] = v
			a[j][i] = v
		}
		a[i][i] += lambda * float64(m)
		b[i] = y[i] - k.intercept
	}
	alpha, err := cholSolve(a, b)
	if err != nil {
		return nil, err
	}
	k.alpha = alpha
	return k, nil
}

// medianGamma returns 1/median(||xi-xj||^2) over a bounded prefix of the
// sample pairs — the standard median heuristic, made O(1)-bounded by
// capping the pair count. Falls back to 1 when every pair coincides.
func medianGamma(xs [][]float64) float64 {
	const maxPairs = 2048
	var dists []float64
	for i := 0; i < len(xs) && len(dists) < maxPairs; i++ {
		for j := i + 1; j < len(xs) && len(dists) < maxPairs; j++ {
			dists = append(dists, sqDist(xs[i], xs[j]))
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med <= 0 {
		return 1
	}
	return 1 / med
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

// Predict implements Predictor.
func (k *KernelRidge) Predict(x []float64) float64 {
	z := make([]float64, len(k.mean))
	for j := range z {
		if j < len(x) {
			z[j] = (x[j] - k.mean[j]) / k.std[j]
		}
	}
	y := k.intercept
	for i, xi := range k.xs {
		y += k.alpha[i] * math.Exp(-k.Gamma*sqDist(xi, z))
	}
	return y
}

// Digest implements Predictor: FNV-64a over standardisation parameters,
// gamma, intercept and the dual coefficients, in fixed order.
func (k *KernelRidge) Digest() string {
	return digestFloats(k.mean, k.std, []float64{k.Gamma, k.intercept, k.Lambda}, k.alpha)
}
