// Package model learns task-duration estimators from feature-annotated
// traces. The paper assumes exact CM_i/CP_i, derived offline from a
// linear performance model of the Cascade machine (§5: transfer bytes
// over link bandwidth, flops over flop rate); production systems never
// have exact durations — they have estimates. This package closes that
// gap in pure Go: per-task feature vectors (transfer bytes, memory
// footprint, contraction flops, memory-bound traffic) ride in the trace
// format's `#!` annotations, closed-form ridge and kernel-ridge
// estimators fit CM and CP separately, k-fold cross-validation reports
// MAPE/R², and a calibrated-noise perturbation engine drives the
// robustness sweep (internal/experiments) that asks which of the 14
// heuristics degrade gracefully when durations are mispredicted.
//
// Everything here is deterministic: seeded *rand.Rand only, no wall
// clock (the package is listed in lint.DetclockPackages), fits are
// closed-form normal equations solved by Cholesky in a fixed order, and
// golden FNV-64a digests over the fitted coefficients pin
// bit-reproducibility across runs and -shuffle orders.
package model

import (
	"math"

	"transched/internal/trace"
)

// Features is the canonical per-task feature vector. The columns mirror
// what the chem generators know at task-creation time — the inputs of
// the machine cost model, not its outputs:
//
//   - Bytes: transfer volume over the serial link (drives CM);
//   - Mem: the task's memory footprint while resident;
//   - Flops: tensor-contraction flop count (drives compute-bound CP);
//   - MemTraffic: memory-bound byte traffic (drives transpose CP).
type Features struct {
	Bytes      float64
	Mem        float64
	Flops      float64
	MemTraffic float64
}

// Names lists the canonical column names, in Vector order. These are the
// names the chem generators write into trace annotations.
var Names = []string{"bytes", "mem", "flops", "mem_traffic"}

// Vector returns the features as a slice in Names order.
func (f Features) Vector() []float64 {
	return []float64{f.Bytes, f.Mem, f.Flops, f.MemTraffic}
}

// FromRow reorders a named feature row into canonical Names order. The
// row may carry the columns in any order and may include extra columns
// (ignored); ok is false when a canonical column is missing. This is
// what lets the serving tier accept annotated traces whose producers
// ordered the columns differently.
func FromRow(names []string, row []float64) (vec []float64, ok bool) {
	if len(names) != len(row) {
		return nil, false
	}
	vec = make([]float64, len(Names))
	for i, want := range Names {
		found := false
		for j, have := range names {
			if have == want {
				vec[i] = row[j]
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return vec, true
}

// Dataset is a design matrix with one target column.
type Dataset struct {
	// X[i] is the canonical feature vector of sample i.
	X [][]float64
	// Y[i] is the observed duration of sample i.
	Y []float64
}

// N returns the sample count.
func (d Dataset) N() int { return len(d.X) }

// Extract builds the CM and CP training sets from feature-annotated
// traces: one sample per task that carries a feature row mappable to the
// canonical columns, with the task's observed communication
// (respectively computation) time as the target. Traces without
// annotations, and tasks without rows, are skipped. Order is trace
// order then task order, so the datasets are deterministic.
func Extract(traces []*trace.Trace) (cm, cp Dataset) {
	for _, tr := range traces {
		if len(tr.FeatureNames) == 0 {
			continue
		}
		for i, t := range tr.Tasks {
			row := tr.FeatureRow(i)
			if row == nil {
				continue
			}
			vec, ok := FromRow(tr.FeatureNames, row)
			if !ok {
				continue
			}
			cm.X = append(cm.X, vec)
			cm.Y = append(cm.Y, t.Comm)
			cp.X = append(cp.X, vec)
			cp.Y = append(cp.Y, t.Comp)
		}
	}
	return cm, cp
}

// Predictor estimates a duration from a canonical feature vector.
// Implementations must be deterministic and must expose a digest over
// their fitted parameters so tests can pin bit-reproducibility.
type Predictor interface {
	// Predict returns the estimated duration for a canonical feature
	// vector (Names order). May return small negative values near zero;
	// DurationModel clamps.
	Predict(x []float64) float64
	// Digest returns an FNV-64a hash over the fitted parameters' bits.
	Digest() string
}

// finite reports whether every value is a usable number.
func finite(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
