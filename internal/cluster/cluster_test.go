package cluster

import (
	"math"
	"testing"
)

func TestCascadePreset(t *testing.T) {
	m := Cascade()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Nodes != 10 || m.CoresPerNode != 16 || m.ServiceCoresPerNode != 1 {
		t.Errorf("Cascade shape = %d nodes x %d cores (%d service)", m.Nodes, m.CoresPerNode, m.ServiceCoresPerNode)
	}
	// Paper §5: 10 nodes, one GA core each => 150 worker processes.
	if m.Processes() != 150 {
		t.Errorf("Processes = %d, want 150", m.Processes())
	}
}

func TestTransferTime(t *testing.T) {
	m := Machine{LinkBandwidth: 1e6, Latency: 0.5, FlopRate: 1, MemBandwidth: 1,
		Nodes: 1, CoresPerNode: 2, ServiceCoresPerNode: 1}
	if got := m.TransferTime(2e6); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("TransferTime = %g, want 2.5", got)
	}
}

func TestComputeTimeRoofline(t *testing.T) {
	m := Machine{LinkBandwidth: 1, Latency: 0, FlopRate: 1e9, MemBandwidth: 1e9,
		Nodes: 1, CoresPerNode: 2, ServiceCoresPerNode: 1}
	// Compute-bound: 4e9 flops over 1e9 bytes.
	if got := m.ComputeTime(4e9, 1e9); got != 4 {
		t.Errorf("compute-bound time = %g, want 4", got)
	}
	// Memory-bound: 1e9 flops over 8e9 bytes.
	if got := m.ComputeTime(1e9, 8e9); got != 8 {
		t.Errorf("memory-bound time = %g, want 8", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := Cascade()
	bad := []func(m *Machine){
		func(m *Machine) { m.Nodes = 0 },
		func(m *Machine) { m.CoresPerNode = 0 },
		func(m *Machine) { m.ServiceCoresPerNode = 16 },
		func(m *Machine) { m.ServiceCoresPerNode = -1 },
		func(m *Machine) { m.LinkBandwidth = 0 },
		func(m *Machine) { m.Latency = -1 },
		func(m *Machine) { m.FlopRate = 0 },
		func(m *Machine) { m.MemBandwidth = 0 },
	}
	for i, mutate := range bad {
		m := good
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
}
