// Package cluster models the machine the paper's traces were collected on
// (Cascade at PNNL, paper §5): homogeneous nodes whose cores run one
// process each, with Global Arrays dedicating one core per node to serve
// remote memory operations, and a single fixed route between each
// process's local memory and the GA memory it fetches tiles from.
//
// The paper's data-transfer model is deliberately simple — every transfer
// for a given source-destination pair takes the same route, with no
// bandwidth sharing or congestion — and this package mirrors it: a
// transfer of b bytes costs Latency + b/LinkBandwidth seconds, and a
// kernel of f flops costs f/FlopRate seconds (plus a memory-bound term
// handled by the chem generators).
package cluster

import "fmt"

// Machine describes one homogeneous cluster.
type Machine struct {
	// Name labels presets ("cascade").
	Name string
	// Nodes is the number of allocated nodes.
	Nodes int
	// CoresPerNode counts all cores of a node.
	CoresPerNode int
	// ServiceCoresPerNode counts cores Global Arrays reserves to serve
	// one-sided operations (1 on Cascade).
	ServiceCoresPerNode int
	// LinkBandwidth is the sustained bandwidth of one process's route to
	// the GA memory, in bytes/second.
	LinkBandwidth float64
	// Latency is the fixed per-transfer overhead in seconds.
	Latency float64
	// FlopRate is the sustained double-precision rate of one core in
	// flops/second for tensor kernels.
	FlopRate float64
	// MemBandwidth is the per-core memory bandwidth in bytes/second, used
	// for memory-bound kernels such as tensor transposes.
	MemBandwidth float64
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.Nodes <= 0:
		return fmt.Errorf("cluster: %d nodes", m.Nodes)
	case m.CoresPerNode <= 0:
		return fmt.Errorf("cluster: %d cores per node", m.CoresPerNode)
	case m.ServiceCoresPerNode < 0 || m.ServiceCoresPerNode >= m.CoresPerNode:
		return fmt.Errorf("cluster: %d service cores of %d", m.ServiceCoresPerNode, m.CoresPerNode)
	case m.LinkBandwidth <= 0:
		return fmt.Errorf("cluster: non-positive link bandwidth")
	case m.Latency < 0:
		return fmt.Errorf("cluster: negative latency")
	case m.FlopRate <= 0:
		return fmt.Errorf("cluster: non-positive flop rate")
	case m.MemBandwidth <= 0:
		return fmt.Errorf("cluster: non-positive memory bandwidth")
	}
	return nil
}

// Processes returns the number of worker processes the machine runs: one
// per non-service core (150 for the Cascade preset, as in the paper).
func (m Machine) Processes() int {
	return m.Nodes * (m.CoresPerNode - m.ServiceCoresPerNode)
}

// TransferTime returns the modelled duration of fetching b bytes from the
// GA memory.
func (m Machine) TransferTime(bytes float64) float64 {
	return m.Latency + bytes/m.LinkBandwidth
}

// ComputeTime returns the modelled duration of a kernel with the given
// flop count and memory traffic: the maximum of the compute-bound and
// memory-bound estimates (roofline style).
func (m Machine) ComputeTime(flops, bytes float64) float64 {
	compute := flops / m.FlopRate
	memory := bytes / m.MemBandwidth
	if memory > compute {
		return memory
	}
	return compute
}

// Cascade returns the paper's experimental platform: 10 nodes of 16 Intel
// Xeon E5-2670 cores, one core per node reserved by Global Arrays, 150
// worker processes. Bandwidth and rates are effective per-process values
// calibrated so the generated HF and CCSD workloads match the
// characteristics the paper reports (Fig 8), not peak hardware numbers.
func Cascade() Machine {
	return Machine{
		Name:                "cascade",
		Nodes:               10,
		CoresPerNode:        16,
		ServiceCoresPerNode: 1,
		LinkBandwidth:       2.0e8, // 200 MB/s effective per-process share
		Latency:             5e-6,
		FlopRate:            2.0e9, // 2 Gflop/s sustained per core
		MemBandwidth:        4.0e9, // 4 GB/s per core
	}
}
