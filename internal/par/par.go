// Package par provides the deterministic fan-out primitive shared by the
// solver portfolios (transched.Solve, rts.Auto): run n independent jobs
// on a bounded pool, with each job writing only to slots owned by its
// index. Reducing the slots serially afterwards — in fixed index order —
// makes the parallel result bit-identical to the serial one, the same
// contract the sweep engine's pool and the slotwrite analyzer enforce
// (LINTING.md).
//
// Unlike the sweep pool, jobs here have no error fast-path: portfolio
// callers record per-candidate errors in their own slots and decide what
// to surface during the serial reduce, so every index always runs.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachIndex runs fn(0) … fn(n-1) on up to workers goroutines and
// returns when all calls have completed. workers <= 0 means
// runtime.GOMAXPROCS(0); workers == 1 runs inline with no goroutines,
// which is the reference serial path. Indices are handed out atomically;
// fn must write only to slots owned by its index.
func ForEachIndex(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
