package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachIndexVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			counts := make([]int32, n)
			ForEachIndex(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachIndexSlotResultsMatchSerial(t *testing.T) {
	const n = 50
	serial := make([]int, n)
	ForEachIndex(1, n, func(i int) { serial[i] = i * i })
	parallel := make([]int, n)
	ForEachIndex(0, n, func(i int) { parallel[i] = i * i })
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestForEachIndexZeroAndNegative(t *testing.T) {
	called := false
	ForEachIndex(4, 0, func(i int) { called = true })
	ForEachIndex(4, -3, func(i int) { called = true })
	if called {
		t.Fatal("fn called for n <= 0")
	}
}
